"""Thread-safety regression tests for the shared plan registry.

The service layer runs many jobs' executors against one process-wide
:class:`~repro.codegen.compiled.PlanRegistry` concurrently.  The
hazards these tests hammer: duplicate module exec under racing misses
(single-flight must build once and park the losers), lost updates to
the stats counters, compile-second attribution charged to more than
one executor, and a failed build wedging its waiters forever.
"""

import threading

import pytest

from repro.codegen.compiled import (
    CompiledExecutor,
    PlanRegistry,
    clear_plan_registry,
)
from repro.core.spec import KernelSpec
from repro.pde import AcousticPDE, ElasticPDE

THREADS = 8
ROUNDS = 5


def _spec(pde, order=3):
    return KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam)


def _hammer(worker, threads=THREADS):
    """Run ``worker(i)`` on N threads at once; re-raise any failure."""
    barrier = threading.Barrier(threads)
    errors = []

    def runner(i):
        barrier.wait()
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 -- surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=runner, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in pool), "hammer threads wedged"
    if errors:
        raise errors[0]


def test_racing_misses_build_each_module_once():
    registry = PlanRegistry()
    pde = AcousticPDE()
    spec = _spec(pde)
    programs = [None] * THREADS

    def worker(i):
        programs[i] = registry.get("splitck", spec, pde)

    _hammer(worker)
    assert all(p is not None for p in programs)
    # every thread got the SAME cached program namespace
    namespaces = {id(p.namespace) for p in programs}
    assert len(namespaces) == 1
    stats = registry.stats.snapshot()
    assert stats["module_builds"] == 1
    assert stats["misses"] == 1
    assert stats["hits"] == THREADS - 1
    # the race was real often enough to exercise the single-flight path
    # (waits can be 0 on a very fast build; the invariant is builds==1)
    assert stats["singleflight_waits"] >= 0


def test_sustained_mixed_key_hammer():
    """Many threads x rounds over several distinct keys: counters add up."""
    registry = PlanRegistry()
    acoustic, elastic = AcousticPDE(), ElasticPDE()
    keys = [
        ("splitck", _spec(acoustic, 2), acoustic, False),
        ("splitck", _spec(acoustic, 3), acoustic, True),
        ("generic", _spec(elastic, 2), elastic, False),
    ]

    def worker(i):
        for round_ in range(ROUNDS):
            variant, spec, pde, fused = keys[(i + round_) % len(keys)]
            program = registry.get(variant, spec, pde, fused=fused)
            assert program is not None

    _hammer(worker)
    stats = registry.stats.snapshot()
    total = THREADS * ROUNDS
    assert stats["hits"] + stats["misses"] == total
    assert stats["misses"] == len(keys)
    assert len(registry) == len(keys)
    # distinct keys never share a build; repeats never rebuild
    assert stats["module_builds"] == len(keys)
    assert stats["compile_seconds_total"] > 0.0


def test_compile_seconds_claimed_by_exactly_one_executor():
    """N executors racing the same key: compile time charged once."""
    clear_plan_registry()
    pde = AcousticPDE()
    spec = _spec(pde)
    executors = [CompiledExecutor() for _ in range(THREADS)]

    def worker(i):
        assert executors[i]._program("splitck", spec, pde, "predict") is not None

    _hammer(worker)
    charged = [e.stats.drain_compile_s() for e in executors]
    winners = [c for c in charged if c > 0.0]
    assert len(winners) == 1
    clear_plan_registry()


def test_failed_build_releases_waiters_and_retries():
    """A build that raises must not wedge racing waiters or poison the key."""
    registry = PlanRegistry()
    pde = AcousticPDE()
    spec = _spec(pde)
    real_module = PlanRegistry._module
    fail_first = {"armed": True}
    lock = threading.Lock()

    def flaky_module(self, module_key, *args, **kwargs):
        with lock:
            armed, fail_first["armed"] = fail_first["armed"], False
        if armed:
            raise RuntimeError("injected build failure")
        return real_module(self, module_key, *args, **kwargs)

    results = [None] * THREADS

    def worker(i):
        try:
            results[i] = registry.get("splitck", spec, pde)
        except RuntimeError as exc:
            results[i] = exc

    try:
        PlanRegistry._module = flaky_module
        _hammer(worker)
    finally:
        PlanRegistry._module = real_module
    failures = [r for r in results if isinstance(r, RuntimeError)]
    successes = [r for r in results if not isinstance(r, BaseException)]
    # exactly the injected failure surfaced; everyone else completed
    assert len(failures) == 1
    assert len(successes) == THREADS - 1
    assert all(s is not None for s in successes)
    # the key is not poisoned: a fresh request hits the cache
    assert registry.get("splitck", spec, pde) is not None


def test_clear_is_safe_under_concurrent_readers():
    registry = PlanRegistry()
    pde = AcousticPDE()
    spec = _spec(pde)
    stop = threading.Event()

    def worker(i):
        if i == 0:
            while not stop.is_set():
                registry.clear()
        else:
            try:
                for _ in range(ROUNDS):
                    assert registry.get("splitck", spec, pde) is not None
            finally:
                stop.set()

    _hammer(worker, threads=4)


@pytest.mark.parametrize("fused", [False, True])
def test_threaded_results_match_single_threaded(fused):
    """The program built under contention is the same object a quiet
    registry hands out afterwards (cache coherence, not just no-crash)."""
    registry = PlanRegistry()
    pde = AcousticPDE()
    spec = _spec(pde)
    got = [None] * THREADS

    def worker(i):
        got[i] = registry.get("splitck", spec, pde, fused=fused)

    _hammer(worker)
    quiet = registry.get("splitck", spec, pde, fused=fused)
    assert all(p is quiet for p in got)
