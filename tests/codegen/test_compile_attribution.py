"""Compile-second attribution must not double-count shared namespaces.

A fused module is a strict superset of the phase module and *seeds the
phase-module cache* with its own namespace
(:meth:`repro.codegen.compiled.PlanRegistry.get`), so a step that
builds the fused program and then touches phase kernels (fallbacks,
warm-up of the three-phase path) hands out the *same* executed module
twice.  The executor keys its one-time ``compile_s`` attribution by
namespace identity -- these tests pin that the exec time is charged
exactly once, at both the executor and the solver level.
"""

import numpy as np

from repro.codegen.compiled import CompiledExecutor, clear_plan_registry
from repro.core.spec import KernelSpec
from repro.pde import AcousticPDE
from repro.scenarios.gaussian import gaussian_pulse_setup


def _fresh_executor():
    clear_plan_registry()
    return CompiledExecutor()


def test_fused_then_phase_program_charged_once():
    """Phase program sharing a fused namespace adds zero compile time."""
    executor = _fresh_executor()
    pde = AcousticPDE()
    spec = KernelSpec(order=3, nvar=pde.nvar, nparam=pde.nparam)
    fused = executor._program("splitck", spec, pde, "fused", fused=True)
    assert fused is not None
    charged = executor.stats.drain_compile_s()
    assert charged > 0.0
    phase = executor._program("splitck", spec, pde, "predict", fused=False)
    assert phase is not None
    # superset seeding: both programs execute the same module namespace
    assert phase.namespace is fused.namespace
    assert executor.stats.drain_compile_s() == 0.0


def test_phase_then_fused_program_charged_twice_is_real():
    """Order matters: phase first really execs two modules -> two charges.

    Requesting the phase module first cannot be seeded from a fused
    build, so a later fused request compiles a genuinely new module;
    attribution must charge it (this guards against over-deduping).
    """
    executor = _fresh_executor()
    pde = AcousticPDE()
    spec = KernelSpec(order=3, nvar=pde.nvar, nparam=pde.nparam)
    phase = executor._program("splitck", spec, pde, "predict", fused=False)
    first = executor.stats.drain_compile_s()
    assert first > 0.0
    fused = executor._program("splitck", spec, pde, "fused", fused=True)
    assert fused.namespace is not phase.namespace
    assert executor.stats.drain_compile_s() > 0.0


def test_program_cache_hits_never_recharge():
    """Re-requesting any cached program drains zero compile seconds."""
    executor = _fresh_executor()
    pde = AcousticPDE()
    spec = KernelSpec(order=3, nvar=pde.nvar, nparam=pde.nparam)
    executor._program("splitck", spec, pde, "fused", fused=True)
    executor.stats.drain_compile_s()
    for fused in (True, False, True):
        executor._program("splitck", spec, pde, "ctx", fused=fused)
    assert executor.stats.drain_compile_s() == 0.0


def test_solver_step_compile_key_appears_once():
    """The fused warm-up step carries ``compile``; later steps do not."""
    clear_plan_registry()
    solver = gaussian_pulse_setup(elements=2, order=3, backend="generated")
    with solver:
        dt = 1e-3
        solver.step(dt)
        assert solver.step_records[-1].fused
        assert "compile" in solver.last_step_timings
        warmup_compile = solver.step_records[-1].compile_s
        assert warmup_compile > 0.0
        solver.step(dt)
        assert "compile" not in solver.last_step_timings
        assert solver.step_records[-1].compile_s == 0.0
        # the fused module seeded the phase cache: forcing a phase
        # program through the same executor adds no new compile time
        program = solver.executor._program(
            solver.variant, solver.spec, solver.pde, "predict", fused=False
        )
        assert program is not None
        solver.step(dt)
        assert solver.step_records[-1].compile_s == 0.0
        np.testing.assert_array_equal(  # sanity: solver still stepping
            np.isfinite(solver.states), True
        )
