"""Tests for kernel plans, operations and the recorder."""

import pytest

from repro.codegen.plan import (
    Buffer,
    BufferAccess,
    GemmOp,
    KernelPlan,
    PlanRecorder,
    PointwiseOp,
    TransposeOp,
)
from repro.core.spec import KernelSpec
from repro.gemm.smallgemm import SmallGemm
from repro.machine.isa import FlopCounts


def recorder():
    return PlanRecorder("test", KernelSpec(order=4, nvar=2, arch="skx"))


def test_buffer_validation():
    with pytest.raises(ValueError):
        Buffer("x", 100, "scratch")
    with pytest.raises(ValueError):
        Buffer("x", -1, "temp")


def test_recorder_buffer_idempotent_but_consistent():
    rec = recorder()
    rec.buffer("a", 100, "temp")
    rec.buffer("a", 100, "temp")  # fine
    with pytest.raises(ValueError):
        rec.buffer("a", 200, "temp")


def test_ops_require_registered_buffers():
    rec = recorder()
    with pytest.raises(ValueError):
        rec.gemm(SmallGemm(2, 2, 2), 1, "a", "b", "c")
    with pytest.raises(ValueError):
        rec.pointwise("x", FlopCounts(), (BufferAccess("nope"),))
    with pytest.raises(ValueError):
        rec.transpose("t", "a", "b", 10)


def test_gemm_op_aggregates():
    gemm = SmallGemm(m=4, n=8, k=4, vector_doubles=8)
    op = GemmOp(gemm, batch=10, a="A", b="B", c="C")
    assert op.flops().total == 10 * gemm.flop_counts().total
    assert op.traffic().total_bytes == 10 * gemm.traffic().total_bytes
    accesses = {a.buffer: a for a in op.accesses()}
    assert accesses["A"].read_bytes == 10 * 8 * 4 * 4
    assert accesses["C"].write_bytes > 0
    assert accesses["C"].read_bytes == 0  # beta = 0


def test_gemm_op_accumulate_reads_c():
    gemm = SmallGemm(m=4, n=8, k=4, vector_doubles=8, accumulate=True)
    op = GemmOp(gemm, batch=1, a="A", b="B", c="C")
    accesses = {a.buffer: a for a in op.accesses()}
    assert accesses["C"].read_bytes == accesses["C"].write_bytes > 0


def test_pointwise_and_transpose_traffic():
    op = PointwiseOp(
        "f",
        FlopCounts(scalar=10),
        (BufferAccess("a", read_bytes=64), BufferAccess("b", write_bytes=128)),
    )
    assert op.traffic().read_bytes == 64
    assert op.traffic().write_bytes == 128
    t = TransposeOp("t", "a", "b", nbytes=100)
    assert t.flops().total == 0
    assert t.traffic().total_bytes == 200


def test_plan_aggregates_and_phases():
    rec = recorder()
    rec.buffer("a", 1000, "temp")
    rec.buffer("b", 2000, "input")
    rec.buffer("c", 500, "output")
    rec.phase("one")
    rec.pointwise("f", FlopCounts(scalar=5), (BufferAccess("a", read_bytes=10),))
    rec.phase("two")
    rec.transpose("t", "a", "c", 100)
    plan = rec.finish()
    assert plan.flop_counts().total == 5
    assert plan.temp_footprint_bytes == 1000
    assert plan.total_footprint_bytes == 3500
    assert plan.bytes_in_scope("input") == 2000
    assert plan.phases() == ["one", "two"]
    assert plan.ops_of(TransposeOp)[0].name == "t"
    assert plan.gemm_shapes() == []
