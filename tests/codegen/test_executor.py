"""Unit tests of the executor protocol, resolution and plan registry.

Complements ``test_backend_conformance.py`` (which checks numerics
through whole solver steps): here the plumbing itself is pinned --
backend resolution and fallback rules, the process-wide plan registry's
caching and error behavior, the lowering's fallback taxonomy, and the
determinism of generated kernel source.
"""

import numpy as np
import pytest

from repro.codegen.compiled import (
    CompiledExecutor,
    NumbaExecutor,
    PlanRegistry,
    clear_plan_registry,
    plan_registry,
)
from repro.codegen.executor import (
    BACKEND_NAMES,
    Executor,
    ExecutorStats,
    ExecutorUnavailable,
    NumpyExecutor,
    available_backends,
    numba_available,
    resolve_executor,
)
from repro.codegen.generator import KernelGenerator
from repro.codegen.lowering import (
    generate_module_source,
    pde_token,
    unsupported_reason,
    variant_family,
)
from repro.core.spec import KernelSpec
from repro.pde import AcousticPDE, ElasticPDE
from repro.pde.burgers import BurgersPDE


def _spec(order=3, pde=None):
    pde = pde or AcousticPDE()
    return KernelSpec(order=order, nvar=pde.nvar, nparam=pde.nparam)


# ---------------------------------------------------------------------------
# resolution and fallback
# ---------------------------------------------------------------------------


def test_resolve_numpy():
    executor = resolve_executor("numpy")
    assert isinstance(executor, NumpyExecutor)
    assert executor.name == "numpy" and not executor.is_compiled


def test_resolve_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_executor("fortran")


def test_resolve_instance_passthrough():
    executor = NumpyExecutor()
    assert resolve_executor(executor) is executor


def test_resolve_auto_matches_availability(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    executor = resolve_executor("auto")
    if numba_available():
        assert executor.name == "numba"
    else:
        assert isinstance(executor, NumpyExecutor)


def test_auto_honors_environment_override(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert isinstance(resolve_executor("auto"), NumpyExecutor)
    monkeypatch.setenv("REPRO_BACKEND", "generated")
    assert isinstance(resolve_executor("auto"), CompiledExecutor)
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_executor("auto")


def test_resolve_generated_testing_backend():
    executor = resolve_executor("generated")
    assert isinstance(executor, CompiledExecutor)
    assert executor.is_compiled and executor._jit is None


@pytest.mark.skipif(numba_available(), reason="requires numba to be absent")
def test_explicit_numba_falls_back_with_warning():
    with pytest.warns(RuntimeWarning, match="falling back to numpy"):
        executor = resolve_executor("numba")
    assert isinstance(executor, NumpyExecutor)
    assert "numba" in executor.fallback_reason


@pytest.mark.skipif(numba_available(), reason="requires numba to be absent")
def test_numba_executor_unavailable_raises():
    with pytest.raises(ExecutorUnavailable):
        NumbaExecutor()


def test_available_backends_shape():
    availability = available_backends()
    assert availability["numpy"] is True
    assert set(availability) == {"numpy", "numba"}
    assert set(BACKEND_NAMES) == {"auto", "numpy", "numba"}


def test_describe_reports_fallbacks():
    executor = CompiledExecutor()
    executor.stats.note_fallback("predict:burgers", "nonlinear")
    info = executor.describe()
    assert info["backend"] == "generated" and info["compiled"]
    assert info["fallbacks"] == {"predict:burgers": "nonlinear"}


def test_stats_drain_compile():
    stats = ExecutorStats()
    stats.add_compile("predict", 0.25)
    stats.add_compile("riemann", 0.5)
    assert stats.total_compile_s == pytest.approx(0.75)
    assert stats.drain_compile_s() == pytest.approx(0.75)
    assert stats.drain_compile_s() == 0.0


# ---------------------------------------------------------------------------
# unknown variant names raise ValueError (regression; satellite fix)
# ---------------------------------------------------------------------------


def test_generator_plans_rejects_unknown_variants():
    gen = KernelGenerator(_spec(), AcousticPDE())
    with pytest.raises(ValueError, match="unknown variant names \\['warp'\\]"):
        gen.plans(["splitck", "warp"])
    # the error names the available registry, not a bare KeyError
    with pytest.raises(ValueError, match="available:"):
        gen.plans(["warp"])


def test_plan_registry_rejects_unknown_variant():
    with pytest.raises(ValueError, match="unknown .*variant"):
        plan_registry().get("warp", _spec(), AcousticPDE())


def test_variant_family_rejects_unknown_variant():
    with pytest.raises(ValueError, match="warp"):
        variant_family("warp")


def test_executor_propagates_unknown_variant():
    executor = CompiledExecutor()
    with pytest.raises(ValueError):
        executor._program("warp", _spec(), AcousticPDE(), "predict")


# ---------------------------------------------------------------------------
# plan registry caching
# ---------------------------------------------------------------------------


def test_registry_caches_programs():
    registry = PlanRegistry()
    pde = AcousticPDE()
    first = registry.get("splitck", _spec(), pde)
    again = registry.get("splitck", _spec(), pde)
    assert first is again


def test_registry_shares_namespace_within_family():
    """Same loop family + order + PDE -> one executed module."""
    registry = PlanRegistry()
    pde = AcousticPDE()
    splitck = registry.get("splitck", _spec(), pde)
    aosoa = registry.get("aosoa", _spec(), pde)
    log = registry.get("log", _spec(), pde)
    assert splitck.namespace is aosoa.namespace
    assert splitck.namespace is not log.namespace
    assert splitck.family == "splitck" and log.family == "spacetime"
    # plan-derived sources still differ per variant
    assert splitck.source != aosoa.source


def test_registry_separates_orders_and_pdes():
    registry = PlanRegistry()
    acoustic = AcousticPDE()
    elastic = ElasticPDE()
    a3 = registry.get("splitck", _spec(3), acoustic)
    a4 = registry.get("splitck", _spec(4), acoustic)
    e3 = registry.get("splitck", _spec(3, elastic), elastic)
    assert a3.namespace is not a4.namespace
    assert a3.namespace is not e3.namespace


def test_module_registry_clear():
    clear_plan_registry()
    registry = plan_registry()
    program = registry.get("splitck", _spec(), AcousticPDE())
    assert registry.get("splitck", _spec(), AcousticPDE()) is program
    clear_plan_registry()
    assert plan_registry().get("splitck", _spec(), AcousticPDE()) is not program


# ---------------------------------------------------------------------------
# lowering: fallback taxonomy and determinism
# ---------------------------------------------------------------------------


def test_unsupported_pde_reasons():
    assert unsupported_reason(AcousticPDE()) is None
    reason = unsupported_reason(BurgersPDE())
    assert "linear" in reason


def test_compiled_executor_falls_back_on_unsupported_pde():
    executor = CompiledExecutor()
    pde = BurgersPDE()
    spec = KernelSpec(order=3, nvar=pde.nvar, nparam=pde.nparam)
    assert executor._program("splitck", spec, pde, "predict") is None
    assert any("linear" in r for r in executor.stats.fallbacks.values())


def test_compiled_riemann_falls_back_on_non_rusanov():
    """Upwind has no generated kernel: results equal the NumPy sweep."""
    from repro.engine.riemann import SWEEP_SOLVERS

    rng = np.random.default_rng(7)
    pde = AcousticPDE()
    n = 3
    ql = rng.normal(size=(4, n, n, pde.nquantities))
    qr = rng.normal(size=(4, n, n, pde.nquantities))
    ql[..., 4:] = qr[..., 4:] = 1.0
    pl = np.ones((4, n, n, pde.nparam))
    executor = CompiledExecutor()
    got = executor.riemann_sweep(pde, "upwind", ql, qr, pl, pl, 0)
    want = SWEEP_SOLVERS["upwind"](pde, ql, qr, pl, pl, 0)
    np.testing.assert_array_equal(got, want)
    assert any("upwind" in r for r in executor.stats.fallbacks.values())


def test_generated_source_is_deterministic():
    pde = AcousticPDE()
    assert generate_module_source("splitck", 4, pde) == generate_module_source(
        "splitck", 4, pde
    )
    token = pde_token(pde)
    assert token == pde_token(AcousticPDE())
    assert token != pde_token(ElasticPDE())


def test_lowered_source_embeds_plan_header():
    source = KernelGenerator(_spec(), AcousticPDE()).lower("splitck")
    assert "lowered from plan: variant=splitck" in source
    assert "gemm schedule:" in source
    assert "temp footprint:" in source


def test_base_executor_contract():
    executor = Executor()
    assert executor.name == "base"
    assert repr(NumpyExecutor()) == "NumpyExecutor(name='numpy')"


def test_environment_override_rejects_unknown_name(monkeypatch):
    """Regression: a bad REPRO_BACKEND value must fail and name its source."""
    monkeypatch.setenv("REPRO_BACKEND", "cuda")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        resolve_executor("auto")
    # the error lists every name the environment variable accepts
    monkeypatch.setenv("REPRO_BACKEND", "nmba")
    with pytest.raises(ValueError, match="generated"):
        resolve_executor("auto")
    # explicit backend requests never consult the environment
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    assert isinstance(resolve_executor("numpy"), NumpyExecutor)
