"""Tests for the Kernel Generator facade, controller and renderer."""

import pytest

from repro.codegen.controller import template_variables
from repro.codegen.generator import KernelGenerator
from repro.core.spec import VARIANTS, KernelSpec
from repro.core.variants import make_kernel
from repro.pde import AcousticPDE, CurvilinearElasticPDE


def elastic_generator(order=4, arch="skx"):
    spec = KernelSpec(order=order, nvar=9, nparam=12, arch=arch)
    return KernelGenerator(spec, CurvilinearElasticPDE())


def test_template_variables_mirror_exahype_names():
    spec = KernelSpec(order=6, nvar=9, nparam=12, arch="skx")
    tvars = template_variables(spec)
    assert tvars["nDof"] == 6
    assert tvars["nDofPad"] == 8
    assert tvars["nVar"] == 9
    assert tvars["nData"] == 21
    assert tvars["nDataPad"] == 24
    assert tvars["VECTLENGTH"] == 6  # Fig. 8 constants
    assert tvars["VECTSTRIDE"] == 8
    assert tvars["ALIGNMENT"] == 64


def test_generator_validates_pde():
    spec = KernelSpec(order=4, nvar=9, nparam=12)
    with pytest.raises(ValueError):
        KernelGenerator(spec, AcousticPDE())


def test_generator_builds_all_variants():
    gen = elastic_generator()
    plans = gen.plans()
    assert set(plans) == set(VARIANTS)
    for plan in plans.values():
        assert plan.ops


def test_generator_rejects_unknown_variant():
    gen = elastic_generator()
    with pytest.raises(ValueError):
        gen.kernel("turbo")


def test_render_contains_gemm_calls_and_footprint():
    gen = elastic_generator()
    source = gen.render("log")
    assert "gemm_4_24_4" in source  # x-derivative microkernel at order 4
    assert "aligned(ALIGNMENT)" in source
    assert "temp footprint" in source
    assert source.startswith("// Generated STP kernel: variant=log")


def test_render_generic_has_no_gemms():
    source = elastic_generator().render("generic")
    assert "gemm_" not in source


def test_render_aosoa_has_transposes_and_pragmas():
    source = elastic_generator().render("aosoa")
    assert "transpose_aos_to_aosoa" in source
    assert "#pragma omp simd" in source


def test_plan_consistency_with_direct_kernel():
    """The facade records the same plan as calling the kernel directly."""
    gen = elastic_generator()
    via_facade = gen.plan("splitck")
    direct = make_kernel("splitck", gen.spec, gen.pde).build_plan()
    assert via_facade.gemm_shapes() == direct.gemm_shapes()
    assert via_facade.flop_counts().total == direct.flop_counts().total
    assert set(via_facade.buffers) == set(direct.buffers)
