"""Unit tests for matrix-slice extraction (paper Fig. 3)."""

import numpy as np
import pytest

from repro.tensor.slicing import (
    SliceBatch,
    fused_slice_batch,
    strided_slice_batch,
    tail_slice_batch,
)


def test_fused_batch_x_axis_aos():
    """AoS x-derivative slices: (N, mpad) contiguous blocks, one per (z, y)."""
    shape = (5, 5, 5, 24)
    batch = fused_slice_batch(shape, axis=2)
    assert (batch.rows, batch.cols) == (5, 24)
    assert batch.row_stride == 24
    assert batch.batch == 25
    assert batch.contiguous_rows


def test_fused_batch_views_match_indexing():
    rng = np.random.default_rng(0)
    arr = rng.standard_normal((3, 4, 5, 6))
    batch = fused_slice_batch(arr.shape, axis=1)
    views = list(batch.views(arr))
    assert len(views) == 3
    for i, v in enumerate(views):
        np.testing.assert_array_equal(v, arr[i].reshape(4, 30))


def test_fused_batch_axis0_single_slice():
    arr = np.arange(2 * 3 * 4, dtype=float).reshape(2, 3, 4)
    batch = fused_slice_batch(arr.shape, axis=0)
    views = list(batch.views(arr))
    assert len(views) == 1
    np.testing.assert_array_equal(views[0], arr.reshape(2, 12))


def test_fused_views_are_writable_views():
    arr = np.zeros((3, 4, 5))
    batch = fused_slice_batch(arr.shape, axis=1)
    for v in batch.views(arr):
        v += 1.0
    np.testing.assert_array_equal(arr, 1.0)


def test_strided_batch_fig3_case():
    """Fig. 3: A(:, 1, :) of a (3, 2, 3) tensor -- slice stride 6 > cols 3."""
    arr = np.arange(3 * 2 * 3, dtype=float).reshape(3, 2, 3)
    batch = strided_slice_batch(arr.shape, axis=0)
    assert (batch.rows, batch.cols) == (3, 3)
    assert batch.row_stride == 6
    assert not batch.contiguous_rows
    assert batch.batch == 2
    views = list(batch.views(arr))
    np.testing.assert_array_equal(views[0], arr[:, 0, :])
    np.testing.assert_array_equal(views[1], arr[:, 1, :])


def test_strided_batch_middle_axis():
    rng = np.random.default_rng(1)
    arr = rng.standard_normal((2, 3, 4, 5))
    batch = strided_slice_batch(arr.shape, axis=1)
    views = list(batch.views(arr))
    assert len(views) == 2 * 4
    idx = 0
    for i in range(2):
        for k in range(4):
            np.testing.assert_array_equal(views[idx], arr[i, :, k, :])
            idx += 1


def test_tail_batch():
    rng = np.random.default_rng(2)
    arr = rng.standard_normal((4, 4, 21, 8))
    batch = tail_slice_batch(arr.shape)
    assert (batch.rows, batch.cols) == (21, 8)
    assert batch.batch == 16
    views = list(batch.views(arr))
    np.testing.assert_array_equal(views[0], arr[0, 0])
    np.testing.assert_array_equal(views[-1], arr[3, 3])


def test_tail_batch_2d_tensor():
    arr = np.ones((3, 4))
    batch = tail_slice_batch(arr.shape)
    assert batch.batch == 1
    np.testing.assert_array_equal(next(iter(batch.views(arr))), arr)


def test_views_shape_validation():
    batch = fused_slice_batch((3, 4), axis=0)
    with pytest.raises(ValueError):
        list(batch.views(np.zeros((4, 3))))


def test_axis_validation():
    with pytest.raises(ValueError):
        fused_slice_batch((3, 4), axis=5)
    with pytest.raises(ValueError):
        strided_slice_batch((3, 4), axis=1)  # rows cannot be unit-stride
    with pytest.raises(ValueError):
        tail_slice_batch((3,))


def test_slice_bounds_validation():
    with pytest.raises(ValueError):
        SliceBatch(
            tensor_shape=(2, 2),
            rows=3,
            cols=2,
            row_stride=2,
            slice_offsets=np.array([0]),
        )


def test_negative_axis():
    arr = np.arange(24, dtype=float).reshape(2, 3, 4)
    batch = fused_slice_batch(arr.shape, axis=-2)
    views = list(batch.views(arr))
    np.testing.assert_array_equal(views[0], arr[0])
