"""Unit and property tests for Loop-over-GEMM contractions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.plan import PlanRecorder
from repro.core.spec import KernelSpec
from repro.gemm.registry import GemmRegistry
from repro.tensor.contraction import contract_axis, contract_last_axis_transposed


def reference_contract(matrix, src, axis):
    """Straightforward einsum reference for dst = matrix applied along axis."""
    return np.moveaxis(np.tensordot(matrix, src, axes=([1], [axis])), 0, axis)


@pytest.mark.parametrize("axis", [0, 1, 2])
def test_contract_matches_einsum(axis):
    rng = np.random.default_rng(0)
    src = rng.standard_normal((4, 4, 4, 8))
    matrix = rng.standard_normal((4, 4))
    dst = np.zeros_like(src)
    contract_axis(matrix, src, dst, axis, GemmRegistry(8))
    np.testing.assert_allclose(dst, reference_contract(matrix, src, axis), atol=1e-12)


def test_contract_accumulates():
    rng = np.random.default_rng(1)
    src = rng.standard_normal((3, 3, 4))
    matrix = rng.standard_normal((3, 3))
    dst = np.ones_like(src)
    contract_axis(matrix, src, dst, 1, GemmRegistry(4), accumulate=True)
    np.testing.assert_allclose(
        dst, 1.0 + reference_contract(matrix, src, 1), atol=1e-12
    )


def test_contract_transposed_matches_einsum():
    """AoSoA x-derivative: contract the padded unit-stride axis."""
    rng = np.random.default_rng(2)
    n, npad, m = 6, 8, 5
    src = np.zeros((4, 4, m, npad))
    src[..., :n] = rng.standard_normal((4, 4, m, n))
    matrix = rng.standard_normal((n, n))
    dst = np.zeros_like(src)
    contract_last_axis_transposed(
        np.ascontiguousarray(matrix.T), src, dst, n, GemmRegistry(8)
    )
    expected = np.einsum("il,zysl->zysi", matrix, src[..., :n])
    np.testing.assert_allclose(dst[..., :n], expected, atol=1e-12)
    # padding lanes untouched
    np.testing.assert_array_equal(dst[..., n:], 0.0)


def test_transposed_equivalent_to_fused_on_swapped_tensor():
    """C^T = A^T M^T: the transposed LoG equals the direct contraction."""
    rng = np.random.default_rng(3)
    n, m = 5, 7
    aosoa = rng.standard_normal((3, 3, m, n))
    matrix = rng.standard_normal((n, n))
    out_t = np.zeros_like(aosoa)
    contract_last_axis_transposed(
        np.ascontiguousarray(matrix.T), aosoa, out_t, n, GemmRegistry(1)
    )
    # Same contraction done on the swapped (AoS-like) tensor.
    aos = np.ascontiguousarray(np.swapaxes(aosoa, -1, -2))
    out = np.zeros_like(aos)
    contract_axis(matrix, aos, out, 2, GemmRegistry(1))
    np.testing.assert_allclose(out_t, np.swapaxes(out, -1, -2), atol=1e-12)


def test_recorder_receives_gemm_batches():
    spec = KernelSpec(order=4, nvar=2, arch="skx")
    rec = PlanRecorder("test", spec)
    rec.buffer("D", 4 * 4 * 8, "const")
    rec.buffer("src", 4**3 * 8 * 8, "temp")
    rec.buffer("dst", 4**3 * 8 * 8, "temp")
    src = np.zeros((4, 4, 4, 8))
    matrix = np.eye(4)
    contract_axis(
        matrix, src, np.zeros_like(src), 2, GemmRegistry(8),
        recorder=rec, matrix_name="D", src_name="src", dst_name="dst",
    )
    plan = rec.finish()
    assert plan.gemm_shapes() == [(4, 8, 4, 16)]
    op = plan.ops[0]
    assert (op.a, op.b, op.c) == ("D", "src", "dst")


def test_gemm_registry_reuse_across_calls():
    registry = GemmRegistry(8)
    src = np.zeros((4, 4, 4, 8))
    for _ in range(3):
        contract_axis(np.eye(4), src, np.zeros_like(src), 2, registry)
    assert len(registry) == 1  # one microkernel, reused
    assert registry.dispatch_count == 3
    assert registry.hit_rate == pytest.approx(2 / 3)


def test_shape_validation():
    registry = GemmRegistry(8)
    with pytest.raises(ValueError):
        contract_axis(np.eye(3), np.zeros((4, 4)), np.zeros((4, 4)), 0, registry)
    with pytest.raises(ValueError):
        contract_axis(np.eye(4), np.zeros((4, 4)), np.zeros((4, 5)), 0, registry)
    with pytest.raises(ValueError):
        contract_last_axis_transposed(
            np.eye(9), np.zeros((3, 8)), np.zeros((3, 8)), 9, registry
        )


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 6),
    m=st.integers(1, 9),
    axis=st.integers(0, 2),
    vec=st.sampled_from([1, 4, 8]),
    seed=st.integers(0, 2**31),
)
def test_contraction_property(n, m, axis, vec, seed):
    """LoG contraction equals the einsum reference for any shape/ISA."""
    rng = np.random.default_rng(seed)
    pad = ((m + vec - 1) // vec) * vec
    src = np.zeros((n, n, n, pad))
    src[..., :m] = rng.standard_normal((n, n, n, m))
    matrix = rng.standard_normal((n, n))
    dst = np.zeros_like(src)
    contract_axis(matrix, src, dst, axis, GemmRegistry(vec))
    np.testing.assert_allclose(dst, reference_contract(matrix, src, axis), atol=1e-10)
