"""Tests for the uniform hexahedral grid."""

import numpy as np
import pytest

from repro.basis.operators import cached_operators
from repro.mesh.grid import BOUNDARY, UniformGrid


def test_index_roundtrip():
    grid = UniformGrid((3, 4, 5), extent=(3.0, 4.0, 5.0))
    for e in range(grid.n_elements):
        assert grid.index(*grid.coordinates(e)) == e


def test_cubic_element_validation():
    with pytest.raises(ValueError):
        UniformGrid((2, 2, 2), extent=(1.0, 2.0, 1.0))
    with pytest.raises(ValueError):
        UniformGrid((0, 1, 1))


def test_periodic_neighbors_wrap():
    grid = UniformGrid((3, 3, 3))
    e = grid.index(2, 1, 1)
    assert grid.neighbor(e, 0, 1) == grid.index(0, 1, 1)
    assert grid.neighbor(e, 0, 0) == grid.index(1, 1, 1)


def test_physical_boundary():
    grid = UniformGrid((2, 2, 2), periodic=(False, False, False))
    corner = grid.index(0, 0, 0)
    assert grid.neighbor(corner, 0, 0) == BOUNDARY
    assert grid.neighbor(corner, 2, 0) == BOUNDARY
    assert grid.neighbor(corner, 1, 1) == grid.index(0, 1, 0)


def test_neighbor_symmetry():
    grid = UniformGrid((3, 3, 3))
    for e in range(grid.n_elements):
        for d in range(3):
            n = grid.neighbor(e, d, 1)
            assert grid.neighbor(n, d, 0) == e


def test_node_coordinates_within_element():
    grid = UniformGrid((2, 2, 2), extent=(2.0, 2.0, 2.0))
    ops = cached_operators(4)
    e = grid.index(1, 0, 1)
    pts = grid.node_coordinates(e, ops)
    assert pts.shape == (4, 4, 4, 3)
    org = grid.origin(e)
    assert np.all(pts[..., 0] >= org[0]) and np.all(pts[..., 0] <= org[0] + 1.0)
    # canonical index order: axis 2 of the array is x, axis 0 is z
    assert pts[0, 0, 1, 0] > pts[0, 0, 0, 0]  # x grows along last axis
    assert pts[1, 0, 0, 2] > pts[0, 0, 0, 2]  # z grows along first axis


def test_locate():
    grid = UniformGrid((4, 4, 4), extent=(2.0, 2.0, 2.0))
    e, ref = grid.locate(np.array([0.75, 0.25, 1.9]))
    assert e == grid.index(1, 0, 3)
    np.testing.assert_allclose(ref, [0.5, 0.5, 0.8], atol=1e-12)
    with pytest.raises(ValueError):
        grid.locate(np.array([5.0, 0.0, 0.0]))


def test_locate_on_boundary_point():
    grid = UniformGrid((2, 2, 2))
    e, ref = grid.locate(np.array([1.0, 1.0, 1.0]))
    assert e == grid.index(1, 1, 1)
    np.testing.assert_allclose(ref, [1.0, 1.0, 1.0])


def test_h():
    assert UniformGrid((5, 5, 5), extent=(2.5, 2.5, 2.5)).h == pytest.approx(0.5)
