"""Tests for the Peano space-filling-curve ordering."""

import numpy as np
import pytest

from repro.mesh.sfc import is_power_of_three, peano_coordinates, peano_order


def test_is_power_of_three():
    assert is_power_of_three(1)
    assert is_power_of_three(3)
    assert is_power_of_three(27)
    assert not is_power_of_three(0)
    assert not is_power_of_three(6)


@pytest.mark.parametrize("levels", [1, 2, 3])
def test_curve_visits_every_cell_once(levels):
    coords = peano_coordinates(levels)
    n = 3**levels
    assert len(coords) == n**3
    assert len(set(coords)) == n**3


@pytest.mark.parametrize("levels", [1, 2, 3])
def test_consecutive_cells_are_face_adjacent(levels):
    """The defining locality property of the Peano curve."""
    coords = np.array(peano_coordinates(levels))
    steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
    assert steps.max() == 1


def test_peano_order_permutation():
    order = peano_order((9, 9, 9))
    assert sorted(order) == list(range(9**3))


def test_peano_order_locality_on_grid():
    n = 9
    order = peano_order((n, n, n))
    coords = np.array([(e % n, (e // n) % n, e // (n * n)) for e in order])
    assert np.abs(np.diff(coords, axis=0)).sum(axis=1).max() == 1


def test_non_power_of_three_falls_back_to_identity():
    order = peano_order((4, 4, 4))
    np.testing.assert_array_equal(order, np.arange(64))
    order = peano_order((3, 3, 9))
    np.testing.assert_array_equal(order, np.arange(81))


def test_curve_starts_at_origin():
    assert peano_coordinates(2)[0] == (0, 0, 0)
