"""Tests for the curvilinear mesh transforms."""

import numpy as np
import pytest

from repro.mesh.curvilinear import IdentityTransform, SinusoidalTransform


def fd_jacobian(transform, r, eps=1e-6):
    out = np.zeros((3, 3))
    for b in range(3):
        dr = np.zeros(3)
        dr[b] = eps
        out[:, b] = (transform.physical(r + dr) - transform.physical(r - dr)) / (2 * eps)
    return out


def test_identity_transform():
    t = IdentityTransform()
    r = np.random.default_rng(0).random((5, 3))
    np.testing.assert_array_equal(t.physical(r), r)
    np.testing.assert_allclose(t.metric(r), np.broadcast_to(np.eye(3), (5, 3, 3)))


@pytest.mark.parametrize("amplitude", [0.02, 0.1, 0.25])
def test_sinusoidal_jacobian_matches_finite_differences(amplitude):
    t = SinusoidalTransform(amplitude)
    rng = np.random.default_rng(1)
    for r in rng.random((5, 3)):
        np.testing.assert_allclose(t.jacobian(r), fd_jacobian(t, r), atol=1e-6)


def test_sinusoidal_fixes_boundary():
    """The perturbation vanishes on the box boundary (boundary-fitted)."""
    t = SinusoidalTransform(0.1)
    for r in ([0, 0.3, 0.7], [1, 0.5, 0.5], [0.2, 0.9, 0.0], [0.2, 0.9, 1.0]):
        np.testing.assert_allclose(t.physical(np.array(r, float)), r, atol=1e-14)


def test_metric_is_inverse_jacobian():
    t = SinusoidalTransform(0.1)
    r = np.array([0.3, 0.6, 0.4])
    np.testing.assert_allclose(
        t.metric(r) @ t.jacobian(r), np.eye(3), atol=1e-12
    )


def test_metric_parameters_shape_and_layout():
    t = SinusoidalTransform(0.05)
    r = np.random.default_rng(2).random((4, 4, 3))
    params = t.metric_parameters(r)
    assert params.shape == (4, 4, 9)
    g = t.metric(r)
    np.testing.assert_array_equal(params[..., 3], g[..., 1, 0])  # row-major


def test_invertibility_guard():
    with pytest.raises(ValueError):
        SinusoidalTransform(0.5)
    with pytest.raises(ValueError):
        SinusoidalTransform(-0.1)


def test_jacobian_positive_determinant():
    t = SinusoidalTransform(0.25)
    r = np.random.default_rng(3).random((50, 3))
    det = np.linalg.det(t.jacobian(r))
    assert np.all(det > 0)
