"""Unit tests for the LIBXSMM-like small-GEMM layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm.registry import GemmRegistry
from repro.gemm.smallgemm import SmallGemm


def test_execute_overwrite_and_accumulate():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((3, 4))
    b = rng.standard_normal((4, 5))
    c = np.ones((3, 5))
    SmallGemm(3, 5, 4)(a, b, c)
    np.testing.assert_allclose(c, a @ b, atol=1e-14)
    SmallGemm(3, 5, 4, accumulate=True)(a, b, c)
    np.testing.assert_allclose(c, 2 * (a @ b), atol=1e-13)


def test_execute_shape_checks():
    g = SmallGemm(3, 5, 4)
    with pytest.raises(ValueError):
        g(np.zeros((4, 3)), np.zeros((4, 5)), np.zeros((3, 5)))
    with pytest.raises(ValueError):
        g(np.zeros((3, 4)), np.zeros((5, 4)), np.zeros((3, 5)))
    with pytest.raises(ValueError):
        g(np.zeros((3, 4)), np.zeros((4, 5)), np.zeros((5, 3)))


def test_flop_counts_padded_width():
    """A 4x21x4 AVX-512 microkernel pads 21 columns to 3 full registers."""
    g = SmallGemm(m=4, n=21, k=4, vector_doubles=8)
    assert g.n_vectors == 3
    counts = g.flop_counts()
    assert counts.v512 == 2 * 4 * 4 * 24
    assert counts.total == counts.v512
    assert g.useful_flops == 2 * 4 * 4 * 21


def test_scalar_microkernel_attribution():
    g = SmallGemm(m=4, n=21, k=4, vector_doubles=1)
    counts = g.flop_counts()
    assert counts.scalar == 2 * 4 * 4 * 21
    assert counts.total == g.useful_flops


def test_avx2_attribution():
    g = SmallGemm(m=4, n=22, k=4, vector_doubles=4)
    counts = g.flop_counts()
    assert counts.v256 == 2 * 4 * 4 * 24  # 22 -> 6 registers of 4
    assert counts.scalar == 0


def test_no_padding_when_exact_multiple():
    g = SmallGemm(m=8, n=24, k=8, vector_doubles=8)
    assert g.flop_counts().total == g.useful_flops


def test_traffic_counts():
    g = SmallGemm(m=2, n=8, k=3, vector_doubles=8)
    t = g.traffic()
    assert t.read_bytes == 8 * (2 * 3 + 3 * 8)
    assert t.write_bytes == 8 * 2 * 8
    acc = SmallGemm(m=2, n=8, k=3, vector_doubles=8, accumulate=True)
    assert acc.traffic().read_bytes == 8 * (2 * 3 + 3 * 8 + 2 * 8)


def test_leading_dimension_defaults_and_validation():
    g = SmallGemm(3, 5, 4)
    assert (g.lda, g.ldb, g.ldc) == (4, 5, 5)
    g2 = SmallGemm(3, 5, 4, ldb=24, ldc=24)
    assert g2.ldb == 24
    with pytest.raises(ValueError):
        SmallGemm(3, 5, 4, ldc=2)
    with pytest.raises(ValueError):
        SmallGemm(0, 5, 4)
    with pytest.raises(ValueError):
        SmallGemm(3, 5, 4, vector_doubles=3)


def test_registry_dedup_and_stats():
    reg = GemmRegistry(8)
    g1 = reg.get(4, 8, 4)
    g2 = reg.get(4, 8, 4)
    g3 = reg.get(4, 8, 4, accumulate=True)
    assert g1 is g2
    assert g1 is not g3
    assert len(reg) == 2
    assert reg.dispatch_count == 3
    assert reg.generated_kernels == [g1, g3]


def test_registry_vector_width_validation():
    with pytest.raises(ValueError):
        GemmRegistry(5)
    assert GemmRegistry(8).hit_rate == 0.0


def test_repr_contains_shape():
    assert "4x8x4" in repr(SmallGemm(4, 8, 4))


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(1, 8),
    n=st.integers(1, 32),
    k=st.integers(1, 8),
    vec=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(0, 2**31),
)
def test_execution_matches_numpy_property(m, n, k, vec, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = np.zeros((m, n))
    g = SmallGemm(m, n, k, vector_doubles=vec)
    g(a, b, c)
    np.testing.assert_allclose(c, a @ b, atol=1e-12)
    # Cost model invariants: padded >= useful, equality iff n % vec == 0.
    assert g.flop_counts().total >= g.useful_flops
    if n % vec == 0:
        assert g.flop_counts().total == g.useful_flops
