"""Kernel tuning: the paper's optimization workflow, end to end.

Given an application (the m = 21 curvilinear elastic system) and an
order, generate all four STP kernel variants, inspect their plans --
instruction mix, GEMM shapes, memory footprint -- and predict their
performance on the simulated Skylake, exactly the decision process the
paper's Secs. III-V walk through.  Also prints a slice of the
generated C-like kernel source.

    python examples/kernel_tuning.py [--order 8] [--arch skx]

Set ``REPRO_QUICK=1`` for a seconds-long smoke run (CI uses this).
"""

import argparse
import os

from repro.codegen import KernelGenerator
from repro.harness.experiments import application_performance, paper_spec
from repro.pde import CurvilinearElasticPDE

QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--order", type=int, default=4 if QUICK else 8)
    parser.add_argument("--arch", default="skx", choices=["noarch", "hsw", "skx", "knl"])
    args = parser.parse_args()

    spec = paper_spec(args.order, args.arch)
    pde = CurvilinearElasticPDE()
    generator = KernelGenerator(spec, pde)

    print(f"workload: {pde.name}, m = {pde.nquantities} quantities, "
          f"order {args.order}, arch {args.arch} "
          f"(SIMD width {spec.architecture.vector_doubles} doubles)")
    print(f"padding: m {pde.nquantities} -> {spec.mpad}, "
          f"x-line {args.order} -> {spec.npad} "
          f"(AoSoA overhead {spec.aosoa_padding_overhead * 100:.0f}%)\n")

    header = (f"{'variant':<9} {'temp KiB':>9} {'fits L2':>8} {'GEMMs':>6} "
              f"{'scalar%':>8} {'512bit%':>8} {'%avail':>7} {'stall%':>7}")
    print(header)
    print("-" * len(header))
    for variant in ("generic", "log", "splitck", "aosoa"):
        plan = generator.plan(variant)
        mix = plan.flop_counts().fractions()
        perf = application_performance(variant, args.order, args.arch)
        fits = "yes" if plan.temp_footprint_bytes <= 2**20 else "NO"
        print(f"{variant:<9} {plan.temp_footprint_bytes / 1024:9.0f} {fits:>8} "
              f"{len(plan.gemm_shapes()):6d} {mix[64] * 100:8.1f} "
              f"{mix[512] * 100:8.1f} {perf.percent_available:7.1f} "
              f"{perf.memory_stall_pct:7.1f}")

    print("\ndistinct GEMM microkernels of the AoSoA variant "
          "(LIBXSMM dispatch shapes):")
    kernel = generator.kernel("aosoa")
    kernel.build_plan()
    for gemm in kernel.registry.generated_kernels:
        print(f"  {gemm!r}")

    print("\ngenerated kernel source (AoSoA variant, head):")
    source = generator.render("aosoa")
    print("\n".join(source.splitlines()[:24]))
    print("  ...")


if __name__ == "__main__":
    main()
