"""Solver-as-a-service: submit jobs, stream telemetry, share the cache.

Spins up a :class:`repro.service.SolverService` with a bounded pool of
solver slots and walks through the whole client surface:

* submit scenario specs as plain dicts and stream each job's per-step
  :class:`~repro.parallel.telemetry.StepRecord` telemetry and receiver
  samples *while it runs*,
* watch a fleet of identical compiled-backend jobs pay kernel
  compilation exactly once (the shared plan cache),
* drive the queue into saturation and read the reasoned
  :class:`~repro.service.AdmissionError` admission control hands back,
* cancel a pending job before it ever takes a slot.

    python examples/service_demo.py [--slots 2] [--jobs 4] [--order 3]

Set ``REPRO_QUICK=1`` for a seconds-long smoke run (CI uses this).
"""

import argparse
import os

from repro.codegen.executor import numba_available
from repro.service import AdmissionError, SolverService

QUICK = os.environ.get("REPRO_QUICK") == "1"


def compiled_backend() -> str:
    """Jitted backend if numba is installed, else plain generated code."""
    return "numba" if numba_available() else "generated"


def stream_one_job(svc, spec) -> None:
    """Submit a job and print its event stream as it arrives."""
    handle = svc.submit(spec)
    print(f"\n[{handle.job_id}] submitted "
          f"({spec['scenario']}, order {spec['order']}, {spec['steps']} steps)")
    for event in handle.events(timeout=600):
        if event["kind"] == "state":
            print(f"[{handle.job_id}] state -> {event['state']}")
        elif event["kind"] == "step":
            record = event["record"]
            print(f"[{handle.job_id}] step {record['step']}: "
                  f"dt={record['dt']:.4f} wall={record['wall']:.3f}s "
                  f"backend={record['backend']} "
                  f"compile_s={record['compile_s']:.4f}")
        elif event["kind"] == "receiver":
            peak = max(abs(v) for v in event["values"]) if event["values"] else 0.0
            print(f"[{handle.job_id}] receiver {event['label']}: "
                  f"t={event['t']:.4f} peak|q|={peak:.3e}")
        elif event["kind"] == "result":
            result = event["result"]
            print(f"[{handle.job_id}] result: {result['state']} after "
                  f"{result['steps']} steps, compile_s={result['compile_s']:.4f}, "
                  f"digest {result['state_sha256'][:12]}")


def fleet(svc, spec, jobs) -> None:
    """N identical jobs: compilation is paid once, shared by the rest."""
    print(f"\n--- fleet: {jobs} identical jobs on backend {spec['backend']} ---")
    handles = [svc.submit(spec) for _ in range(jobs)]
    results = [h.result(timeout=600) for h in handles]
    for handle, result in zip(handles, results):
        print(f"[{handle.job_id}] compile_s={result['compile_s']:.4f} "
              f"digest {result['state_sha256'][:12]}")
    digests = {r["state_sha256"] for r in results}
    payers = sum(1 for r in results if r["compile_s"] > 0)
    print(f"distinct digests: {len(digests)} (bitwise identical fleet), "
          f"jobs that paid compilation: {payers}")
    cache = svc.stats()["plan_cache"]
    print(f"shared plan cache: {cache['module_builds']} build(s), "
          f"{cache['hits']} hits, {cache['compile_seconds_total']:.4f}s compiled")


def saturate(spec) -> None:
    """A tiny service driven past capacity: admission rejects, reasoned."""
    print("\n--- admission control: slots=1, max_pending=1 ---")
    with SolverService(slots=1, max_pending=1) as svc:
        admitted = []
        rejected = None
        for i in range(4):
            try:
                admitted.append(svc.submit(dict(spec, label=f"burst-{i}")))
            except AdmissionError as exc:
                rejected = exc
                print(f"burst-{i}: REJECTED -- {exc.reason}")
                break
        cancelled = sum(1 for h in admitted if h.cancel())
        print(f"admitted {len(admitted)} job(s); cancelled {cancelled} "
              f"(running jobs stop at the next step boundary)")
        for handle in admitted:
            result = handle.result(timeout=600)
            print(f"[{handle.job_id}] -> {result['state']} "
                  f"after {result.get('steps', 0)} step(s)")
        assert rejected is not None or len(admitted) == 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=3 if QUICK else 4)
    parser.add_argument("--order", type=int, default=2 if QUICK else 3)
    parser.add_argument("--elements", type=int, default=2)
    parser.add_argument("--steps", type=int, default=2 if QUICK else 4)
    args = parser.parse_args()

    spec = {
        "scenario": "gaussian",
        "elements": args.elements,
        "order": args.order,
        "steps": args.steps,
        "backend": compiled_backend(),
    }
    print(f"solver service: {args.slots} slots; compiled backend "
          f"{spec['backend']} (numba "
          f"{'available' if numba_available() else 'not installed'})")

    with SolverService(slots=args.slots, max_pending=2 * args.jobs) as svc:
        stream_one_job(svc, spec)
        fleet(svc, spec, args.jobs)

    saturate(dict(spec, steps=max(args.steps, 3)))
    print("\ndone.")


if __name__ == "__main__":
    main()
