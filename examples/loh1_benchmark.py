"""LOH1: the paper's benchmark scenario, shrunk to laptop size.

Layer-over-halfspace seismic wave propagation (paper Sec. VI) with the
full m = 21 curvilinear elastic workload: 9 wave quantities, 3 material
parameters and 9 boundary-fitted-mesh metric entries per node, a
Ricker-wavelet double-couple point source and three surface receivers.

    python examples/loh1_benchmark.py [--order 4] [--elements 3] [--variant aosoa]

Set ``REPRO_QUICK=1`` for a seconds-long smoke run (CI uses this).
"""

import argparse
import os

import numpy as np

from repro.scenarios import LOH1Scenario

QUICK = os.environ.get("REPRO_QUICK") == "1"


def ascii_seismogram(times, values, width=64, height=9) -> str:
    """Render one component as a crude ASCII wiggle plot."""
    if len(times) < 2 or np.allclose(values, 0):
        return "  (flat)"
    idx = np.linspace(0, len(times) - 1, width).astype(int)
    v = values[idx]
    peak = np.abs(v).max()
    rows = []
    for level in range(height, -1, -1):
        y = (2 * level / height - 1) * peak
        row = "".join(
            "*" if abs(val - y) <= peak / height else " " for val in v
        )
        rows.append(f"  {y:+9.2e} |{row}")
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--order", type=int, default=3 if QUICK else 4)
    parser.add_argument("--elements", type=int, default=3)
    parser.add_argument("--variant", default="aosoa",
                        choices=["generic", "log", "splitck", "aosoa"])
    parser.add_argument("--t-end", type=float, default=0.04 if QUICK else 0.35)
    args = parser.parse_args()

    scenario = LOH1Scenario(
        elements=args.elements, order=args.order, variant=args.variant
    )
    solver = scenario.solver
    print(f"LOH1 (shrunk): {args.elements}^3 elements, order {args.order}, "
          f"variant {args.variant}, m = {scenario.pde.nquantities} quantities/node")
    print(f"layer cs = 2.0 km/s over halfspace cs = 3.464 km/s; "
          f"double-couple source at {scenario.source.position} km")

    while solver.t < args.t_end - 1e-12:
        solver.step()
        if solver.step_count % 10 == 0:
            print(f"  step {solver.step_count:3d}  t = {solver.t:.3f} s  "
                  f"peak surface |v| = {scenario.peak_surface_velocity():.3e}")

    print(f"\nseismograms ({solver.step_count} samples):")
    for label, (times, samples) in scenario.seismograms().items():
        # show the dominant velocity component (the Mxy double couple
        # radiates vy toward receivers on the x axis through the source)
        comp = int(np.argmax(np.abs(samples[:, :3]).max(axis=0)))
        v = samples[:, comp]
        name = "xyz"[comp]
        print(f"\nreceiver {label}: peak |v{name}| = {np.abs(v).max():.3e}")
        print(ascii_seismogram(times, v))


if __name__ == "__main__":
    main()
