"""Quickstart: solve a 3-D acoustic wave with the ADER-DG engine.

A Gaussian pressure pulse in a periodic unit box, discretized at order
4 with the cache-aware SplitCK predictor kernel -- the ``hello world``
of the engine.  Runs in a few seconds.

    python examples/quickstart.py
"""

import numpy as np

from repro.scenarios import gaussian_pulse_setup


def main() -> None:
    solver = gaussian_pulse_setup(elements=3, order=4, variant="splitck")
    print(f"mesh: {solver.grid.shape} elements, order {solver.spec.order}, "
          f"{solver.grid.n_elements * solver.spec.nodes_per_element} nodes")
    print(f"kernel variant: {solver.kernel.variant}  (arch {solver.spec.arch})")

    mass0 = solver.integrate()
    t_end = 0.25
    while solver.t < t_end - 1e-12:
        dt = solver.step()
        if solver.step_count % 5 == 0 or solver.t >= t_end - 1e-12:
            print(f"  step {solver.step_count:3d}  t = {solver.t:.4f}  "
                  f"dt = {dt:.2e}  max|q| = {solver.max_abs():.4f}")

    drift = np.abs(solver.integrate() - mass0)[:4].max()
    print(f"\ndone: {solver.step_count} steps to t = {solver.t:.3f}")
    print(f"conservation drift of the cell averages: {drift:.2e}")
    print("the pulse has expanded into a spherical acoustic wave.")


if __name__ == "__main__":
    main()
