"""Quickstart: solve a 3-D acoustic wave with the ADER-DG engine.

A Gaussian pressure pulse in a periodic unit box, discretized at order
4 with the cache-aware SplitCK predictor kernel -- the ``hello world``
of the engine.  Runs in a few seconds.

    python examples/quickstart.py

Set ``REPRO_QUICK=1`` for a seconds-long smoke run (CI uses this).
"""

import os

import numpy as np

from repro.scenarios import gaussian_pulse_setup

QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    order = 3 if QUICK else 4
    solver = gaussian_pulse_setup(elements=3, order=order, variant="splitck")
    print(f"mesh: {solver.grid.shape} elements, order {solver.spec.order}, "
          f"{solver.grid.n_elements * solver.spec.nodes_per_element} nodes")
    print(f"kernel variant: {solver.kernel.variant}  (arch {solver.spec.arch})")

    mass0 = solver.integrate()
    t_end = 0.05 if QUICK else 0.25
    while solver.t < t_end - 1e-12:
        dt = solver.step()
        if solver.step_count % 5 == 0 or solver.t >= t_end - 1e-12:
            print(f"  step {solver.step_count:3d}  t = {solver.t:.4f}  "
                  f"dt = {dt:.2e}  max|q| = {solver.max_abs():.4f}")

    drift = np.abs(solver.integrate() - mass0)[:4].max()
    print(f"\ndone: {solver.step_count} steps to t = {solver.t:.3f}")
    print(f"conservation drift of the cell averages: {drift:.2e}")
    print("the pulse has expanded into a spherical acoustic wave.")

    # perturbation study: stiffen the medium mid-run by writing the
    # sound-speed parameter in place -- state-derived caches (wave
    # speed, material face parameters) must be dropped by hand
    pde = solver.pde
    solver.states[..., pde.C] *= 1.5
    solver.invalidate_state_caches()
    dt_stiff = solver.stable_dt()
    print(f"\nafter c *= 1.5 the CFL step drops to dt = {dt_stiff:.2e}")
    solver.step()
    print(f"restarted into the stiffer medium: max|q| = {solver.max_abs():.4f}")


if __name__ == "__main__":
    main()
