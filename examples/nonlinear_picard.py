"""Extension demo: the nonlinear (Picard) space-time predictor.

The paper's kernels implement the *linear* Cauchy-Kowalewsky path;
ExaHyPE's non-linear path iterates a space-time fixed point instead
(Sec. I: "choosing between a scheme for a linear or a non-linear PDE
system").  This example runs the reproduction's Picard predictor on a
genuinely nonlinear system (3-D Burgers) and cross-checks it against
the linear kernels on an acoustic problem.

    python examples/nonlinear_picard.py

Runs in well under a minute; ``REPRO_QUICK=1`` is accepted for
uniformity with the other examples but changes nothing here.
"""

import numpy as np

from repro.basis.operators import cached_operators
from repro.core.picard import PicardSTP
from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.pde import AcousticPDE, BurgersPDE


def main() -> None:
    # 1. cross-check on a linear system: Picard == Cauchy-Kowalewsky
    pde = AcousticPDE()
    spec = KernelSpec(order=5, nvar=4, nparam=2, arch="skx")
    q = pde.example_state((5, 5, 5), np.random.default_rng(0))
    picard = PicardSTP(spec, pde)
    r_picard = picard.predictor(q, dt=2e-4, h=0.5)
    r_ck = make_kernel("splitck", spec, pde).predictor(q, dt=2e-4, h=0.5)
    diff = np.abs(r_picard.qavg - r_ck.qavg).max()
    print(f"linear cross-check: |Picard - CK| = {diff:.2e} "
          f"({picard.last_iterations} iterations, "
          f"residual {picard.last_residual:.1e})")

    # 2. a real nonlinear system: Burgers
    burgers = BurgersPDE(direction=(1.0, 0.5, 0.0))
    spec_b = KernelSpec(order=6, nvar=1, arch="skx")
    ops = cached_operators(6)
    coords = np.zeros((6, 6, 6, 3))
    coords[..., 0] = ops.nodes[None, None, :]
    coords[..., 1] = ops.nodes[None, :, None]
    coords[..., 2] = ops.nodes[:, None, None]

    def initial(points):
        return 0.3 + 0.1 * np.sin(2 * np.pi * points[..., 0])

    q0 = initial(coords)[..., None]
    kernel = PicardSTP(spec_b, burgers, max_iterations=20, tolerance=1e-14)
    result = kernel.predictor(q0, dt=4e-3, h=1.0)
    print(f"\nBurgers predictor: {kernel.last_iterations} Picard iterations, "
          f"residual {kernel.last_residual:.1e}")

    exact = np.zeros_like(q0[..., 0])
    for tau, w in zip(ops.nodes, ops.weights):
        exact += w * burgers.exact_smooth_solution(initial, coords, tau * 4e-3)
    exact *= 4e-3
    interior = (slice(1, -1),) * 3
    err = np.abs(result.qavg[..., 0][interior] - exact[interior]).max()
    print(f"vs characteristics solution (interior nodes): max error {err:.2e}")
    print("\nthe linear kernels correctly refuse nonlinear systems:")
    try:
        make_kernel("aosoa", spec_b, burgers)
    except TypeError as exc:
        print(f"  TypeError: {exc}")


if __name__ == "__main__":
    main()
