"""Convergence study: N nodes per dimension give N-th order convergence.

Runs an exact acoustic plane wave at several orders and mesh widths and
prints the observed convergence rates (paper Sec. II-A's accuracy
claim) -- the numerical-correctness counterpart to the performance
figures.

    python examples/convergence_study.py

Set ``REPRO_QUICK=1`` for a seconds-long smoke run (CI uses this).
"""

import os

import numpy as np

from repro.scenarios.planarwave import acoustic_plane_wave_setup, solution_error

QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    t_end = 0.05 if QUICK else 0.15
    print("acoustic plane wave, periodic box, upwind fluxes")
    print(f"{'order':>6} {'elements':>9} {'max error':>12} {'rate':>6}")
    for order in (2, 3) if QUICK else (2, 3, 4, 5):
        prev = None
        for elements in (2, 4):
            solver, wave = acoustic_plane_wave_setup(
                elements=elements, order=order, variant="splitck"
            )
            solver.run(t_end)
            err = solution_error(solver, wave)
            rate = "" if prev is None else f"{np.log2(prev / err):6.2f}"
            print(f"{order:6d} {elements:9d} {err:12.3e} {rate:>6}")
            prev = err
    print("\nexpected: rate approaching the order as resolution enters the")
    print("asymptotic regime (low orders on coarse meshes are marginal).")


if __name__ == "__main__":
    main()
