"""Multi-core LOH1: the sharded solver over Peano-SFC element blocks.

Runs the shrunk LOH1 scenario serially and again with
``num_workers=`` worker processes (states in shared memory, one
persistent process per contiguous space-filling-curve shard), then
shows the shard layout, the per-worker load balance of the last step
and -- the headline property -- that the parallel field is *bitwise
identical* to the serial one (see docs/parallel.md for why).

    python examples/parallel_loh1.py [--workers 4] [--order 4] [--t-end 0.1]

Set ``REPRO_QUICK=1`` for a seconds-long smoke run (CI uses this).
"""

import argparse
import os
import time

import numpy as np

from repro.scenarios import LOH1Scenario

QUICK = os.environ.get("REPRO_QUICK") == "1"


def run(num_workers, args):
    """One LOH1 run; returns (states, seconds per step, scenario stats)."""
    with LOH1Scenario(
        elements=args.elements,
        order=args.order,
        variant=args.variant,
        num_workers=num_workers,
        batch_size=args.batch_size,
    ) as scenario:
        solver = scenario.solver
        start = time.perf_counter()
        scenario.run(t_end=args.t_end)
        elapsed = time.perf_counter() - start
        timings = solver.last_step_timings if solver.num_workers > 1 else None
        plan = solver.shard_plan if solver.num_workers > 1 else None
        states = np.array(solver.states)
        steps = solver.step_count
    return states, elapsed / max(steps, 1), steps, plan, timings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2 if QUICK else 4)
    parser.add_argument("--order", type=int, default=3 if QUICK else 4)
    parser.add_argument("--elements", type=int, default=3)
    parser.add_argument("--variant", default="splitck",
                        choices=["generic", "log", "splitck", "aosoa"])
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--t-end", type=float, default=0.02 if QUICK else 0.1)
    args = parser.parse_args()

    print(f"LOH1 {args.elements}^3 elements, order {args.order}, "
          f"variant {args.variant}, batch {args.batch_size}; "
          f"host cores: {os.cpu_count()}")

    serial, t_serial, steps, _, _ = run(None, args)
    print(f"\nserial:   {steps} steps, {t_serial:.3f} s/step")

    parallel, t_par, _, plan, timings = run(args.workers, args)
    print(f"parallel: {plan.num_shards} workers, {t_par:.3f} s/step "
          f"(speedup {t_serial / t_par:.2f}x)")

    sizes = plan.shard_sizes()
    print(f"\nshard plan: sizes {min(sizes)}-{max(sizes)} elements, "
          f"{plan.cut_faces()} of {plan.interior_faces()} interior faces cut "
          f"({100 * plan.cut_fraction():.0f}%)")
    if timings is not None:
        busy = {w: timings.predict[w] + timings.correct[w]
                for w in sorted(timings.predict)}
        for worker, seconds in busy.items():
            bar = "#" * max(1, round(30 * seconds / max(busy.values())))
            print(f"  worker {worker}: {1e3 * seconds:7.1f} ms  {bar}")
        print(f"  load imbalance (max/mean busy): {timings.imbalance():.2f}")

    diff = np.abs(parallel - serial).max()
    print(f"\nmax |parallel - serial| over all states: {diff:.1e}")
    assert diff == 0.0, "sharded execution must be bitwise identical"
    print("bitwise identical, as designed (redundant cross-shard Riemann "
          "solves,\nsingle-owner writes; docs/parallel.md).")


if __name__ == "__main__":
    main()
