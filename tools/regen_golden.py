"""Regenerate the golden regression fixtures in ``tests/data/golden/``.

Each fixture is one small, fully deterministic solver run on the NumPy
reference backend: a scenario, a *fixed* time step and a fixed step
count, with the final state array and the run metadata stored in one
``.npz`` file.  ``tests/engine/test_golden.py`` replays every scenario
on every available backend and compares against these snapshots, so
any change to the numerics -- intended or not -- shows up as a golden
diff instead of sliding in silently.

Usage::

    PYTHONPATH=src python tools/regen_golden.py            # rewrite fixtures
    PYTHONPATH=src python tools/regen_golden.py --check    # fail on drift

Regenerate (and commit the diff) only when a numerics change is
*intended*; the fixtures are the regression baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

#: fixture schema version, stored in every file; bump on layout changes
GOLDEN_VERSION = 1


def _gaussian(backend):
    from repro.scenarios.gaussian import gaussian_pulse_setup

    solver = gaussian_pulse_setup(
        elements=2, order=3, variant="splitck", backend=backend
    )
    return solver, 2.0e-3, 3


def _elastic_pwave(backend):
    from repro.scenarios.planarwave import elastic_plane_wave_setup

    solver, _ = elastic_plane_wave_setup(
        elements=2, order=4, variant="generic", backend=backend
    )
    return solver, 1.0e-3, 3


def _loh1(backend):
    from repro.scenarios.loh1 import LOH1Scenario

    scenario = LOH1Scenario(elements=2, order=3, backend=backend)
    return scenario.solver, 2.0e-3, 2


#: name -> builder(backend) -> (solver, dt, steps); the builders pin
#: every knob (mesh, order, variant, dt, steps) so runs are repeatable
SCENARIOS = {
    "gaussian_acoustic_o3": _gaussian,
    "elastic_pwave_o4": _elastic_pwave,
    "loh1_curvilinear_o3": _loh1,
}


def golden_dir() -> Path:
    """Location of the committed fixtures."""
    root = Path(__file__).resolve().parent.parent
    return root / "tests" / "data" / "golden"


def run_scenario(name: str, backend="numpy") -> dict:
    """Run one golden scenario; returns the payload to snapshot."""
    builder = SCENARIOS[name]
    solver, dt, steps = builder(backend)
    with solver:
        for _ in range(steps):
            solver.step(dt)
        return {
            "states": solver.states.copy(),
            "t": np.float64(solver.t),
            "dt": np.float64(dt),
            "steps": np.int64(steps),
            "version": np.int64(GOLDEN_VERSION),
        }


def write_fixture(name: str, directory: Path | None = None) -> Path:
    """Run ``name`` on the NumPy backend and write its ``.npz``."""
    directory = golden_dir() if directory is None else Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.npz"
    np.savez_compressed(path, **run_scenario(name, backend="numpy"))
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="fail if any fixture differs from a fresh run")
    parser.add_argument("names", nargs="*", default=None,
                        help="scenario subset (default: all)")
    args = parser.parse_args(argv)
    names = args.names or sorted(SCENARIOS)

    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenarios {unknown}; available: {sorted(SCENARIOS)}",
              file=sys.stderr)
        return 2

    status = 0
    for name in names:
        path = golden_dir() / f"{name}.npz"
        if args.check:
            if not path.exists():
                print(f"MISSING  {path}", file=sys.stderr)
                status = 1
                continue
            fresh = run_scenario(name, backend="numpy")
            with np.load(path) as snapshot:
                same = np.allclose(
                    snapshot["states"], fresh["states"],
                    rtol=1e-10, atol=1e-13,
                )
            print(("ok       " if same else "DRIFTED  ") + str(path))
            if not same:
                status = 1
        else:
            print(f"wrote {write_fixture(name)}")
    return status


if __name__ == "__main__":
    sys.exit(main())
