"""Docstring-coverage gate for ``src/repro`` (no external dependencies).

Walks every module with :mod:`ast` and counts docstrings on modules,
public classes and public functions/methods (a leading underscore
opts an object out; ``__init__`` is covered by its class docstring and
is not counted separately).  A method overriding a *documented*
base-class method counts as documented -- that matches what ``help()``
and :func:`inspect.getdoc` show users, and avoids forcing copy-pasted
contracts onto every PDE/variant override.  Otherwise the behaviour
mirrors the ``interrogate`` tool this repo would use if it could
install it.

Usage::

    PYTHONPATH=src python tools/check_docstrings.py             # gate at 90%
    PYTHONPATH=src python tools/check_docstrings.py --fail-under 95
    PYTHONPATH=src python tools/check_docstrings.py --verbose   # list misses

CI runs the default gate; the threshold is deliberately below 100 so
that tiny private-ish helpers do not force boilerplate.
"""

from __future__ import annotations

import argparse
import ast
import importlib
import inspect
import sys
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _inherited_doc(module_name: str, class_name: str, attr: str) -> bool:
    """True if ``class.attr`` resolves to a docstring via the MRO."""
    try:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
        member = getattr(cls, attr)
    except Exception:
        return False
    return bool(inspect.getdoc(member))


def inspect_file(path: Path, module_name: str) -> tuple[int, int, list[str]]:
    """Return (documented, total, missing labels) for one module."""
    tree = ast.parse(path.read_text())
    documented = 0
    total = 1  # the module itself
    missing: list[str] = []
    if ast.get_docstring(tree):
        documented += 1
    else:
        missing.append("<module>")

    def visit(node: ast.AST, prefix: str) -> None:
        nonlocal documented, total
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not _is_public(child.name):
                    continue
                label = f"{prefix}{child.name}"
                total += 1
                if ast.get_docstring(child):
                    documented += 1
                elif prefix and not isinstance(child, ast.ClassDef) and _inherited_doc(
                    module_name, prefix.rstrip("."), child.name
                ):
                    documented += 1
                else:
                    missing.append(label)
                if isinstance(child, ast.ClassDef):
                    visit(child, f"{label}.")

    visit(tree, "")
    return documented, total, missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(DEFAULT_ROOT),
                        help="package directory to scan (default: src/repro)")
    parser.add_argument("--fail-under", type=float, default=90.0,
                        help="minimum coverage percentage (default: 90)")
    parser.add_argument("--verbose", action="store_true",
                        help="list every undocumented object")
    args = parser.parse_args(argv)

    root = Path(args.root)
    files = sorted(root.rglob("*.py"))
    if not files:
        print(f"no python files under {root}", file=sys.stderr)
        return 2

    package_root = root.parent
    sys.path.insert(0, str(package_root))

    grand_documented = 0
    grand_total = 0
    rows = []
    for path in files:
        parts = path.relative_to(package_root).with_suffix("").parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        documented, total, missing = inspect_file(path, ".".join(parts))
        grand_documented += documented
        grand_total += total
        rows.append((path.relative_to(root), documented, total, missing))

    width = max(len(str(rel)) for rel, *_ in rows)
    for rel, documented, total, missing in rows:
        pct = 100.0 * documented / total
        flag = "" if not missing else f"  missing: {len(missing)}"
        print(f"{str(rel):<{width}}  {documented:>3}/{total:<3} {pct:6.1f}%{flag}")
        if args.verbose:
            for label in missing:
                print(f"{'':<{width}}    - {label}")

    coverage = 100.0 * grand_documented / grand_total
    print(f"\ntotal: {grand_documented}/{grand_total} documented "
          f"= {coverage:.1f}% (gate: {args.fail_under:.0f}%)")
    if coverage < args.fail_under:
        print(f"FAILED: docstring coverage {coverage:.1f}% is below "
              f"{args.fail_under:.0f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
