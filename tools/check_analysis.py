"""Static-analysis gate for CI (the :mod:`repro.analysis` front door).

Runs all three analyzers -- the generated-kernel auditor, the
shard-plan race prover and the hot-path lint -- and fails when any
*new* error finding appears beyond the checked-in baseline
(``tools/analysis_baseline.json``).  Mirrors ``check_docstrings.py``:
no dependencies beyond the repo itself, plain exit codes, human rows.

Usage::

    PYTHONPATH=src python tools/check_analysis.py            # gate (CI)
    PYTHONPATH=src python tools/check_analysis.py --check    # same, explicit
    PYTHONPATH=src python tools/check_analysis.py --write-baseline
    PYTHONPATH=src python tools/check_analysis.py --verbose  # show accepted

``--write-baseline`` records the current findings as the accepted
residue; run it after deliberately accepting a finding (and justify
the acceptance in the commit message).  A *stale* baseline -- entries
no analyzer reports anymore -- is flagged as a warning so fixed
findings do not stay silently acceptable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "analysis_baseline.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    ERROR,
    apply_baseline,
    format_findings,
    load_baseline,
    run_analysis,
    write_baseline,
)


def main(argv=None) -> int:
    """Run the gate; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate mode (the default; flag kept for CI symmetry)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings as the baseline")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file (default: tools/analysis_baseline.json)")
    parser.add_argument("--verbose", action="store_true",
                        help="also list baseline-accepted findings")
    args = parser.parse_args(argv)

    findings, telemetry = run_analysis()
    kernels = telemetry.get("kernels", {})
    races = telemetry.get("races", [])
    print(
        f"analyzers: {kernels.get('audited', 0)} kernels audited, "
        f"{len(races)} shard plans proven, hot-path lint over src/repro"
    )
    for race in races:
        print(
            f"  {race['plan']}: redundant riemann faces = "
            f"{race['redundant_riemann_faces']}"
        )

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(f"baseline written: {baseline_path} ({len(findings)} findings)")
        return 0

    if args.verbose and findings:
        print("all findings (before baseline):")
        print(format_findings(findings))

    stale: list[str] = []
    accepted = 0
    if baseline_path.exists():
        baseline = load_baseline(baseline_path)
        total = len(findings)
        findings, stale = apply_baseline(findings, baseline)
        accepted = total - len(findings)

    errors = [f for f in findings if f.severity == ERROR]
    print(
        f"\nfindings: {len(errors)} new error(s), "
        f"{len(findings) - len(errors)} new warning(s), "
        f"{accepted} baseline-accepted"
    )
    if findings:
        print(format_findings(findings))
    for key in stale:
        print(f"warning: stale baseline entry {key!r} "
              "(re-run --write-baseline)")
    if errors:
        print("FAILED: new static-analysis errors (see above); fix them, "
              "add a pragma, or re-baseline deliberately", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
