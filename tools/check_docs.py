"""Documentation consistency gate over ``docs/*.md`` and ``README.md``.

Docs drift silently: files move, APIs get renamed, CLI flags change.
This checker makes three classes of drift a CI failure:

* **dead relative links** -- every ``[text](path)`` markdown link whose
  target is not ``http(s)``/``mailto`` must resolve to a file, relative
  to the linking document (or, leniently, to the repo root);
* **stale API references** -- every dotted ``repro.*`` name mentioned
  anywhere (prose or code block) must import: the longest importable
  module prefix is imported and the remaining parts resolved with
  ``getattr``;
* **stale CLI flags** -- on lines invoking one of the repo's own
  entry points (``python -m repro.harness``, ``python -m
  repro.analysis``, ``python tools/X.py``, ``python benchmarks/X.py``,
  ``python examples/X.py``), every ``--flag`` token must be an
  ``add_argument`` option of that script (collected statically from
  its AST, so nothing is executed).

Usage::

    PYTHONPATH=src python tools/check_docs.py            # report
    PYTHONPATH=src python tools/check_docs.py --check    # CI gate

Both forms exit non-zero when any finding is produced; ``--check``
exists for symmetry with the other ``tools/`` gates.  ``--root``
points the scan at another tree (used by the self-tests).
"""

from __future__ import annotations

import argparse
import ast
import importlib
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)#\s]+)(#[^)]*)?\)")
DOTTED_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")

#: command prefix -> script path (relative to the repo root) whose
#: argparse options legitimize the flags on that line
COMMAND_SCRIPTS = (
    ("python -m repro.harness", "src/repro/harness/cli.py"),
    ("python -m repro.analysis", "src/repro/analysis/__main__.py"),
)
#: directories whose scripts may be invoked as ``python <dir>/X.py``
SCRIPT_DIRS = ("tools", "benchmarks", "examples")


def doc_files(root: Path) -> list[Path]:
    """The markdown files under the gate: ``docs/*.md`` + ``README.md``."""
    files = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_links(path: Path, text: str, root: Path) -> list[str]:
    """Dead-relative-link findings of one document."""
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(2)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            candidates = (path.parent / target, root / target)
            if not any(c.exists() for c in candidates):
                findings.append(
                    f"{path.relative_to(root)}:{lineno}: dead link "
                    f"({target!r} does not exist)"
                )
    return findings


def _resolves(dotted: str) -> bool:
    """Whether a dotted ``repro.*`` name imports (module and/or attrs)."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_references(path: Path, text: str, root: Path) -> list[str]:
    """Stale ``repro.*`` dotted-reference findings of one document."""
    findings = []
    seen: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in DOTTED_RE.finditer(line):
            dotted = match.group(0)
            if dotted in seen:
                continue
            seen.add(dotted)
            if not _resolves(dotted):
                findings.append(
                    f"{path.relative_to(root)}:{lineno}: stale reference "
                    f"({dotted} does not resolve)"
                )
    return findings


def script_flags(script: Path) -> set[str] | None:
    """``--flag`` option strings a script declares, from its AST.

    Collects every string constant starting with ``--`` passed to a
    call whose attribute name is ``add_argument``; returns ``None``
    when the script cannot be read/parsed (the caller then skips flag
    validation rather than guessing).
    """
    try:
        tree = ast.parse(script.read_text())
    except (OSError, SyntaxError):
        return None
    flags: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value.startswith("--"):
                    flags.add(arg.value)
    return flags


def _line_script(line: str, root: Path) -> tuple[str, Path] | None:
    """The (command, script path) an invocation line refers to, if any."""
    for command, rel in COMMAND_SCRIPTS:
        if command in line:
            return command, root / rel
    match = re.search(
        rf"python ({'|'.join(SCRIPT_DIRS)})/([A-Za-z0-9_]+\.py)", line
    )
    if match:
        return match.group(0), root / match.group(1) / match.group(2)
    return None


def check_cli_flags(path: Path, text: str, root: Path) -> list[str]:
    """Stale-CLI-flag findings of one document."""
    findings = []
    cache: dict[Path, set[str] | None] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        ref = _line_script(line, root)
        if ref is None:
            continue
        command, script = ref
        if script not in cache:
            cache[script] = script_flags(script) if script.exists() else None
        known = cache[script]
        if not script.exists():
            findings.append(
                f"{path.relative_to(root)}:{lineno}: command references "
                f"missing script ({script.relative_to(root)})"
            )
            continue
        if known is None:
            continue
        tail = line.split(command, 1)[1]
        for flag in FLAG_RE.findall(tail):
            if flag not in known:
                findings.append(
                    f"{path.relative_to(root)}:{lineno}: unknown flag "
                    f"{flag} for `{command}`"
                )
    return findings


def check_docs(root: Path) -> list[str]:
    """All findings over the documentation tree rooted at ``root``."""
    findings: list[str] = []
    for path in doc_files(root):
        text = path.read_text()
        findings.extend(check_links(path, text, root))
        findings.extend(check_references(path, text, root))
        findings.extend(check_cli_flags(path, text, root))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="CI-gate mode (same checks; kept for symmetry)")
    parser.add_argument("--root", default=None,
                        help="repo root to scan (default: this file's parent)")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    src = root / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    findings = check_docs(root)
    for finding in findings:
        print(finding, file=sys.stderr)
    files = len(doc_files(root))
    if findings:
        print(f"check_docs: {len(findings)} finding(s) in {files} file(s)",
              file=sys.stderr)
        return 1
    print(f"check_docs: {files} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
