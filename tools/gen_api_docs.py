"""Generate ``docs/api.md`` from the docstrings of the public API.

The public surface is the explicit list in :data:`PUBLIC_API` -- the
objects the README tour and the examples use.  For each entry the
generator emits the import path, the call signature and the docstring
verbatim; for classes it additionally walks the public methods and
properties that carry docstrings.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py           # rewrite docs/api.md
    PYTHONPATH=src python tools/gen_api_docs.py --check   # fail on drift (CI)

``--check`` regenerates the document in memory and exits non-zero if
it differs from the file on disk, so docstring edits cannot silently
drift away from the published API reference.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

#: (module path, object name) pairs, in the order they appear in the doc.
PUBLIC_API = [
    ("repro.core.spec", "KernelSpec"),
    ("repro.core.variants", "make_kernel"),
    ("repro.core.variants", "BatchedSTP"),
    ("repro.engine.solver", "ADERDGSolver"),
    ("repro.codegen", "KernelGenerator"),
    ("repro.codegen", "resolve_executor"),
    ("repro.codegen", "resolve_backend_name"),
    ("repro.codegen", "available_backends"),
    ("repro.codegen", "Executor"),
    ("repro.codegen", "NumpyExecutor"),
    ("repro.codegen", "CompiledExecutor"),
    ("repro.codegen", "NumbaExecutor"),
    ("repro.codegen", "PlanRegistry"),
    ("repro.machine.profiler", "Profiler"),
    ("repro.parallel", "make_shard_plan"),
    ("repro.parallel", "ShardPlan"),
    ("repro.parallel", "SharedArrayBundle"),
    ("repro.parallel", "ShardWorkerPool"),
    ("repro.parallel", "WorkerCrashError"),
    ("repro.parallel", "StepRecord"),
    ("repro.parallel", "EventStream"),
    ("repro.parallel", "build_dependency_graph"),
    ("repro.parallel", "ShardDependencyGraph"),
    ("repro.service", "SolverService"),
    ("repro.service", "JobHandle"),
    ("repro.service", "JobSpec"),
    ("repro.service", "AdmissionError"),
    ("repro.service", "SharedPlanCache"),
    ("repro.analysis", "Finding"),
    ("repro.analysis", "run_analysis"),
    ("repro.analysis", "audit_kernel_source"),
    ("repro.analysis", "audit_generated_kernels"),
    ("repro.analysis", "prove_shard_plan"),
    ("repro.analysis", "prove_async_schedule"),
    ("repro.analysis", "RaceReport"),
    ("repro.analysis", "lint_tree"),
]

HEADER = """\
# API reference

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: PYTHONPATH=src python tools/gen_api_docs.py -->

This document is generated from the docstrings of the public API
surface.  CI runs ``python tools/gen_api_docs.py --check`` and fails
when the two drift apart, so what you read here is what the code says.
"""


def _signature(obj) -> str:
    """Best-effort call signature; classes show their ``__init__``."""
    try:
        if inspect.isclass(obj):
            return str(inspect.signature(obj.__init__)).replace("(self, ", "(").replace("(self)", "()")
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _docstring(obj) -> str:
    doc = inspect.getdoc(obj)
    return doc.strip() if doc else "*(undocumented)*"


def _public_members(cls) -> list[tuple[str, object, str]]:
    """(name, member, kind) for documented public methods/properties."""
    members = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            if member.fget is not None and inspect.getdoc(member):
                members.append((name, member, "property"))
        elif inspect.isfunction(member):
            if inspect.getdoc(member):
                members.append((name, member, "method"))
        elif isinstance(member, classmethod):
            inner = member.__func__
            if inspect.getdoc(inner):
                members.append((name, inner, "classmethod"))
    return members


def render_entry(module_name: str, obj_name: str) -> str:
    """Render one public object as a markdown section."""
    module = importlib.import_module(module_name)
    obj = getattr(module, obj_name)
    kind = "class" if inspect.isclass(obj) else "function"
    lines = [f"## `{obj_name}`", ""]
    lines.append(f"*{kind}* -- `from {module_name} import {obj_name}`")
    lines.append("")
    lines.append("```python")
    lines.append(f"{obj_name}{_signature(obj)}")
    lines.append("```")
    lines.append("")
    lines.append(_docstring(obj))
    lines.append("")
    if inspect.isclass(obj):
        for name, member, member_kind in _public_members(obj):
            lines.append(f"### `{obj_name}.{name}`")
            lines.append("")
            if member_kind == "property":
                lines.append(f"*property* -- {_docstring(member)}")
            else:
                lines.append("```python")
                lines.append(f"{name}{_signature(member)}")
                lines.append("```")
                lines.append("")
                lines.append(_docstring(member))
            lines.append("")
    return "\n".join(lines)


def render() -> str:
    """Render the complete API document."""
    sections = [HEADER]
    for module_name, obj_name in PUBLIC_API:
        sections.append(render_entry(module_name, obj_name))
    return "\n".join(sections).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="fail if docs/api.md is out of date")
    parser.add_argument("--output", default=None,
                        help="output path (default: docs/api.md next to the repo root)")
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    output = Path(args.output) if args.output else root / "docs" / "api.md"
    text = render()

    if args.check:
        on_disk = output.read_text() if output.exists() else ""
        if on_disk != text:
            print(f"{output} is out of date; regenerate with:\n"
                  f"  PYTHONPATH=src python tools/gen_api_docs.py",
                  file=sys.stderr)
            return 1
        print(f"{output} is up to date")
        return 0

    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(text)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
