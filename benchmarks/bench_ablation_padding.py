"""Ablation: the AoSoA padding sweet spot (paper Sec. V-A).

"On AVX-512 architectures order 8 is a sweetspot with no padding
required, whereas order 9 suffers from a particularly large padding
overhead."  The executed-FLOP inflation and its performance effect are
quantified here, together with the AVX2 comparison where order 8 also
pads (8 -> 8 works for both, but 9 -> 12 on AVX2 vs 9 -> 16 on AVX-512).
"""

from repro.core.spec import KernelSpec
from repro.harness.experiments import application_performance, stp_plan


def test_order8_sweet_spot_order9_penalty(benchmark, warm_caches):
    def run():
        return {
            order: (
                stp_plan("splitck", order),
                stp_plan("aosoa", order),
                application_performance("aosoa", order),
            )
            for order in (8, 9, 10)
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    inflation = {
        order: aosoa.flop_counts().total / split.flop_counts().total
        for order, (split, aosoa, _) in data.items()
    }
    # order 8: AoSoA executes FEWER flops (x needs no padding, the AoS
    # variants pad 21 quantities to 24)
    assert inflation[8] < 1.0
    # order 9: 9 -> 16 lanes, a large inflation
    assert inflation[9] > 1.25
    print("\nAoSoA/SplitCK executed-FLOP ratio:",
          {o: round(v, 3) for o, v in inflation.items()})

    # the padding work rides along in otherwise-idle lanes: useful
    # throughput per order still grows (Fig. 10's monotone aosoa curve)
    perf = {o: p.percent_available for o, (_, _, p) in data.items()}
    print("AoSoA % available:", {o: round(v, 1) for o, v in perf.items()})


def test_avx2_padding_differs(warm_caches):
    spec512 = KernelSpec(order=9, nvar=9, nparam=12, arch="skx")
    spec256 = KernelSpec(order=9, nvar=9, nparam=12, arch="hsw")
    assert spec512.npad == 16 and spec256.npad == 12
    assert spec512.aosoa_padding_overhead > spec256.aosoa_padding_overhead
