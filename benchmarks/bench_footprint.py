"""Regenerates the Sec. IV-A memory-footprint analysis.

Paper claims reproduced here:

* generic/LoG temporaries scale as O(N^{d+1} m d) and overflow the
  1 MiB L2 "as soon as N = 6";
* the SplitCK reformulation reduces the footprint to O(N^d m), which
  stays inside L2 through the whole order sweep.
"""

import pytest

from repro.harness.figures import L2_BYTES, footprint_table
from repro.harness.report import render_footprint


def test_footprint_table(benchmark, warm_caches):
    rows = benchmark.pedantic(footprint_table, rounds=1, iterations=1)
    table = {(r["variant"], r["order"]): r for r in rows}

    # the crossover order of the paper
    assert table[("log", 5)]["fits_l2"]
    assert not table[("log", 6)]["fits_l2"]
    assert not table[("generic", 6)]["fits_l2"]
    for order in (4, 6, 8, 9, 10, 11):
        assert table[("splitck", order)]["fits_l2"]
        assert table[("aosoa", order)]["fits_l2"]

    # scaling law: LoG/SplitCK ratio grows ~linearly with N
    ratio6 = table[("log", 6)]["temp_bytes"] / table[("splitck", 6)]["temp_bytes"]
    ratio11 = table[("log", 11)]["temp_bytes"] / table[("splitck", 11)]["temp_bytes"]
    assert ratio11 / ratio6 == pytest.approx(11 / 6, rel=0.15)

    print()
    print(render_footprint())
    print(f"\nL2 budget: {L2_BYTES / 2**20:.0f} MiB per core")
