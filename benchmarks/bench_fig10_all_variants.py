"""Regenerates Fig. 10: % available performance and % memory stalls for
all four STP kernel variants, orders 4..11.

Paper claims reproduced here:

* final ordering aosoa > splitck > log > generic;
* AoSoA reaches ~22.5% of the available performance at order 11
  (model: ~20%), a ~6x speedup over generic;
* both SplitCK-based variants keep improving with the order while
  LoG saturates and generic plateaus.
"""

from repro.harness.figures import figure10
from repro.harness.report import render_fig10, render_headlines


def test_fig10_series(benchmark, warm_caches):
    series = benchmark.pedantic(figure10, rounds=1, iterations=1)
    at = lambda v, o: next(r for r in series[v] if r["order"] == o)

    assert (
        at("aosoa", 11)["percent_available"]
        > at("splitck", 11)["percent_available"]
        > at("log", 11)["percent_available"]
        > at("generic", 11)["percent_available"]
    )
    assert 17.0 < at("aosoa", 11)["percent_available"] < 28.0
    speedup = at("aosoa", 11)["gflops"] / at("generic", 11)["gflops"]
    assert 4.5 < speedup < 7.5
    # SplitCK monotone growth
    perf = [r["percent_available"] for r in series["splitck"]]
    assert perf == sorted(perf)

    print()
    print(render_fig10())
    print()
    print(render_headlines())
