"""Shared fixtures for the benchmark harness.

Every figure benchmark warms the plan/miss caches once so
pytest-benchmark's repeated rounds measure the (deterministic) model
evaluation, not the one-time kernel recording.
"""

import pytest


@pytest.fixture(scope="session")
def warm_caches():
    """Pre-record all plans the figure sweeps need."""
    from repro.harness.experiments import PAPER_ORDERS, application_performance

    for variant in ("generic", "log", "splitck", "aosoa"):
        for order in PAPER_ORDERS:
            application_performance(variant, order)
    for order in PAPER_ORDERS:
        application_performance("log", order, "hsw")
    return True
