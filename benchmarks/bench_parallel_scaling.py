"""Strong scaling of the sharded multi-core solver on the LOH1 scenario.

The :mod:`repro.parallel` subsystem splits the grid into contiguous
Peano-SFC element blocks and runs each block's predictor/corrector in
a persistent worker process over shared-memory state.  This benchmark
measures the end-to-end time-step rate at increasing worker counts and
verifies the acceptance property first: the parallel fields must match
the serial run to 1e-12 relative (by construction they are bitwise
equal -- cross-shard faces are solved redundantly from identical
inputs, and every element has exactly one writer).

Run styles:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_parallel_scaling.py``
  -- pytest-benchmark timing of a sharded step;
* ``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]``
  -- scaling report.  The full run uses the acceptance configuration
  (LOH1, order 6, ``log`` variant, ``num_workers=4``,
  ``batch_size=16``); ``--quick`` shrinks it for CI smoke.

After the scaling sweep, the report compares the two step protocols
(``stepping="barrier"`` vs ``"async"``, see ``docs/stepping.md``) at
one worker count: mean per-step worker-wait seconds out of the step
telemetry, with both protocols conformance-checked against serial.

The >= 2x speedup acceptance gate -- and the async-wait-beats-barrier
gate -- only make sense with real cores to scale onto, so they are
asserted when ``os.cpu_count() >= 4`` and otherwise reported without
failing (a single-core container cannot speed anything up by adding
processes).
"""

import os
import time

import numpy as np
import pytest

from repro.scenarios import LOH1Scenario

ORDER = 6
ELEMENTS = 3
VARIANT = "log"
BATCH = 16
WORKERS = 4
STEPS = 3


def _run(order, elements, variant, num_workers, batch_size, steps,
         stepping="barrier"):
    """Step LOH1 ``steps`` times; return (states, seconds_per_step)."""
    with LOH1Scenario(
        elements=elements,
        order=order,
        variant=variant,
        num_workers=num_workers,
        batch_size=batch_size,
        stepping=stepping,
    ) as scenario:
        dt = scenario.solver.stable_dt()
        start = time.perf_counter()
        for _ in range(steps):
            scenario.solver.step(dt)
        elapsed = time.perf_counter() - start
        states = np.array(scenario.solver.states)
    return states, elapsed / steps


def _run_with_wait(order, elements, variant, num_workers, batch_size,
                   steps, stepping):
    """``run()`` (so async pipelining engages); return states + timings."""
    with LOH1Scenario(
        elements=elements,
        order=order,
        variant=variant,
        num_workers=num_workers,
        batch_size=batch_size,
        stepping=stepping,
    ) as scenario:
        start = time.perf_counter()
        scenario.solver.run(t_end=1e9, max_steps=steps)
        elapsed = time.perf_counter() - start
        states = np.array(scenario.solver.states)
        waits = [
            sum(rec.worker_wait.values())
            for rec in scenario.solver.step_records
        ]
    return states, elapsed / steps, float(np.mean(waits))


def relative_diff(a: np.ndarray, b: np.ndarray) -> float:
    """max |a - b| scaled by max |b| (guarding the all-zero field)."""
    return float(np.abs(a - b).max() / max(np.abs(b).max(), 1e-300))


def test_parallel_step_wallclock(benchmark):
    """pytest-benchmark entry: one sharded LOH1 step at a small order."""
    with LOH1Scenario(
        elements=ELEMENTS, order=3, variant=VARIANT, num_workers=2, batch_size=4
    ) as scenario:
        dt = scenario.solver.stable_dt()
        benchmark(scenario.solver.step, dt)
    assert np.isfinite(scenario.solver.states).all()


@pytest.mark.parametrize("num_workers", [2, 4])
def test_parallel_matches_serial(num_workers):
    """Acceptance bound at bench scale: parallel == serial to 1e-12."""
    serial, _ = _run(3, ELEMENTS, VARIANT, None, 4, STEPS)
    parallel, _ = _run(3, ELEMENTS, VARIANT, num_workers, 4, STEPS)
    assert relative_diff(parallel, serial) < 1e-12


def scaling_report(order=ORDER, elements=ELEMENTS, variant=VARIANT,
                   batch_size=BATCH, max_workers=WORKERS, steps=STEPS):
    """Equivalence check + measured step rate for 1..max_workers shards."""
    serial_states, t_serial = _run(order, elements, variant, None,
                                   batch_size, steps)
    rows = [
        {
            "workers": 1,
            "sec_per_step": t_serial,
            "speedup": 1.0,
            "efficiency": 1.0,
            "rel_diff": 0.0,
        }
    ]
    workers = 2
    while workers <= max_workers:
        states, t_par = _run(order, elements, variant, workers,
                             batch_size, steps)
        rows.append(
            {
                "workers": workers,
                "sec_per_step": t_par,
                "speedup": t_serial / t_par,
                "efficiency": t_serial / t_par / workers,
                "rel_diff": relative_diff(states, serial_states),
            }
        )
        workers *= 2
    return rows


def stepping_report(order=ORDER, elements=ELEMENTS, variant=VARIANT,
                    batch_size=BATCH, workers=WORKERS, steps=STEPS):
    """Barrier vs. async at one worker count: wait seconds per step.

    Both protocols run the identical problem through ``solver.run()``
    (so async speculation engages); each row reports the mean per-step
    sum of ``StepRecord.worker_wait`` -- the synchronization cost the
    async protocol exists to shrink (see ``docs/stepping.md``).
    """
    serial, _ = _run(order, elements, variant, None, batch_size, steps)
    rows = []
    for stepping in ("barrier", "async"):
        states, sec, wait = _run_with_wait(
            order, elements, variant, workers, batch_size, steps, stepping
        )
        rows.append(
            {
                "stepping": stepping,
                "sec_per_step": sec,
                "wait_per_step": wait,
                "rel_diff": relative_diff(states, serial),
            }
        )
    return rows


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke): order 3, 2 workers")
    parser.add_argument("--order", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None,
                        help="largest worker count to measure")
    args = parser.parse_args(argv)

    order = args.order or (3 if args.quick else ORDER)
    max_workers = args.workers or (2 if args.quick else WORKERS)
    batch = 4 if args.quick else BATCH
    steps = 2 if args.quick else STEPS

    cores = os.cpu_count() or 1
    print(f"LOH1 {ELEMENTS}^3 elements, order {order}, variant {VARIANT}, "
          f"batch {batch}; host cores: {cores}")
    rows = scaling_report(order=order, batch_size=batch,
                          max_workers=max_workers, steps=steps)

    header = (f"{'workers':>8}{'s/step':>10}{'speedup':>9}"
              f"{'efficiency':>12}{'rel diff':>11}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['workers']:>8}{row['sec_per_step']:10.3f}"
              f"{row['speedup']:9.2f}{row['efficiency']:12.2f}"
              f"{row['rel_diff']:11.1e}")
        if row["rel_diff"] > 1e-12:
            raise SystemExit(
                f"parallel run with {row['workers']} workers diverged from "
                f"serial: rel diff = {row['rel_diff']:.3e}"
            )

    best = max(row["speedup"] for row in rows)
    if cores >= 4 and not args.quick and best < 2.0:
        raise SystemExit(
            f"acceptance: best speedup only {best:.2f}x on {cores} cores "
            f"(need >= 2x)"
        )
    if cores < 4:
        print(f"\n(speedup gate skipped: {cores} core(s) < 4 -- process "
              f"parallelism cannot beat serial here)")

    workers = min(max_workers, 4) if max_workers > 1 else 2
    print(f"\nstep protocol comparison ({workers} workers):")
    header = f"{'stepping':>10}{'s/step':>10}{'wait/step':>11}{'rel diff':>11}"
    print(header)
    print("-" * len(header))
    srows = stepping_report(order=order, batch_size=batch,
                            workers=workers, steps=steps)
    for row in srows:
        print(f"{row['stepping']:>10}{row['sec_per_step']:10.3f}"
              f"{row['wait_per_step']:11.4f}{row['rel_diff']:11.1e}")
        if row["rel_diff"] > 1e-12:
            raise SystemExit(
                f"{row['stepping']} stepping diverged from serial: "
                f"rel diff = {row['rel_diff']:.3e}"
            )
    barrier_wait = srows[0]["wait_per_step"]
    async_wait = srows[1]["wait_per_step"]
    if cores >= 4 and async_wait >= barrier_wait:
        raise SystemExit(
            f"acceptance: async wait/step {async_wait:.4f}s did not beat "
            f"barrier {barrier_wait:.4f}s on {cores} cores"
        )
    if cores < 4:
        print(f"(wait gate skipped: {cores} core(s) < 4 -- barrier waits "
              f"are not contended here)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
