"""Regenerates Fig. 4: generic vs LoG (AVX-512) vs LoG (AVX2).

Paper claims reproduced here:

* the generic setup is "quite low and quickly stagnates";
* LoG improves to ~2-3x generic at moderate/high order;
* the AVX-512 / AVX2 gap is far below the 2x vector-width ratio
  because memory stalls dominate (paper: 23-30%; model: ~15-20%);
* LoG memory stalls plateau around/above 40% instead of decreasing.
"""

from repro.harness.figures import figure4
from repro.harness.report import render_fig4


def test_fig4_series(benchmark, warm_caches):
    series = benchmark.pedantic(figure4, rounds=1, iterations=1)

    gen = {r["order"]: r for r in series["generic"]}
    log512 = {r["order"]: r for r in series["log_avx512"]}
    log256 = {r["order"]: r for r in series["log_avx2"]}

    # generic stagnates at a low plateau
    assert all(2.5 < gen[o]["percent_available"] < 5.5 for o in gen)
    # LoG clearly beats generic at every order
    assert all(
        log512[o]["percent_available"] > 1.5 * gen[o]["percent_available"]
        for o in log512
    )
    # AVX-512 beats AVX2, but by much less than 2x (stall-limited)
    for o in (6, 9, 11):
        ratio = log512[o]["gflops"] / log256[o]["gflops"]
        assert 1.0 < ratio < 1.5
    # the LoG stall plateau (paper: >= 41% from order 6 on)
    assert all(log512[o]["memory_stall_pct"] > 38.0 for o in (6, 9, 11))
    # AVX2 is less memory-stalled than AVX-512 (paper: 34% vs 41%)
    assert log256[11]["memory_stall_pct"] < log512[11]["memory_stall_pct"]

    print()
    print(render_fig4())
