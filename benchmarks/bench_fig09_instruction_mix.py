"""Regenerates Fig. 9: FLOP packing-width distribution of all variants.

Paper claims reproduced here:

* generic: most FLOPs scalar, only a fraction auto-vectorized;
* LoG / SplitCK: > 80% packed, ~10% scalar left (the user functions);
* AoSoA: scalar share down to the 2-4% band.
"""

from repro.harness.figures import figure9
from repro.harness.report import render_fig9


def test_fig9_mix(benchmark, warm_caches):
    rows = benchmark.pedantic(figure9, rounds=1, iterations=1)
    table = {(r["variant"], r["order"]): r for r in rows}

    for order in (6, 9, 11):
        assert table[("generic", order)]["scalar"] > 75.0
        assert table[("log", order)]["bits512"] > 70.0
        assert table[("splitck", order)]["bits512"] > 70.0
        assert table[("aosoa", order)]["scalar"] < 6.0
    # high order: LoG/SplitCK scalar share near the paper's ~10%
    assert 5.0 < table[("log", 11)]["scalar"] < 20.0
    # AoSoA at high order lands in the paper's 2-4% window
    assert table[("aosoa", 11)]["scalar"] < 4.0

    print()
    print(render_fig9())
