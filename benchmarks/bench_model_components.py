"""Performance of the reproduction's own machinery.

Not a paper figure: keeps the simulator honest by tracking the cost of
plan recording, cache simulation and trace generation -- the pieces
every figure sweep is built from.
"""

import pytest

from repro.harness.experiments import paper_spec, stp_plan
from repro.machine.cache import CacheHierarchy
from repro.machine.memtrace import plan_trace
from repro.machine.segcache import SegmentCacheModel
from repro.core.variants import make_kernel
from repro.pde import CurvilinearElasticPDE


def test_plan_recording(benchmark):
    spec = paper_spec(6)
    kernel = make_kernel("splitck", spec, CurvilinearElasticPDE())
    plan = benchmark(kernel.build_plan)
    assert plan.ops


def test_segment_cache_model(benchmark, warm_caches):
    plan = stp_plan("splitck", 8)

    def run():
        model = SegmentCacheModel(plan.spec.architecture)
        return model.run_plan(plan, repetitions=3)

    misses = benchmark(run)
    assert misses.get("L1") > 0


def test_trace_generation(benchmark, warm_caches):
    plan = stp_plan("splitck", 5)
    trace = benchmark(plan_trace, plan)
    assert len(trace) > 0


def test_line_level_simulator(benchmark, warm_caches):
    plan = stp_plan("splitck", 4)
    trace = plan_trace(plan)

    def run():
        hier = CacheHierarchy(plan.spec.architecture)
        hier.access_stream(trace)
        return hier

    hier = benchmark.pedantic(run, rounds=2, iterations=1)
    assert hier.miss_summary()["L1"] > 0
