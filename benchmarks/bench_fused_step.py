"""Wall-clock comparison: fused whole-step vs three-phase compiled path.

The fused pipeline (see ``docs/backends.md``) chains predict, Riemann
and correct per element block inside one compiled program and keeps the
solver state resident in a padded block stack across steps, so the
per-step ``pack_block``/``unpack_block`` round-trips and the
``qface``/``fstar``/``vavg`` NumPy surfacing of the three-phase path
disappear.  This benchmark measures that win on the paper's m = 21
curvilinear elastic workload (LOH1, order 6, 6^3 grid) and verifies

* the fused and phase-wise states agree to round-off, and
* the steady-state fused path performs **zero** per-step pack/unpack
  (``ExecutorStats``: only the one-time ingest/egress remain).

Run styles:

* ``PYTHONPATH=src python benchmarks/bench_fused_step.py [--quick]``
  -- speedup report.  With Numba installed the full run *gates*: the
  fused order-6 step must beat the three-phase compiled path by
  >= 1.5x.  Without Numba the generated kernels run as plain Python,
  the numerics and pack/unpack checks still run, the gate is skipped.
* ``PYTHONPATH=src python -m pytest benchmarks/bench_fused_step.py``
  -- pytest-benchmark timings of both execution modes.
"""

import time

import numpy as np
import pytest

from repro.codegen.executor import numba_available

ORDER = 6
ELEMENTS = 6  # per dimension: the acceptance grid is 6^3
STEPS = 3


def compiled_backend() -> str:
    """The compiled backend to measure: jitted if possible, else plain."""
    return "numba" if numba_available() else "generated"


def _solver(order, elements, fuse, backend=None):
    from repro.scenarios import LOH1Scenario

    scenario = LOH1Scenario(
        elements=elements, order=order, batch_size=8,
        backend=backend or compiled_backend(), fuse=fuse,
    )
    return scenario.solver


def _step_seconds(solver, dt, steps):
    """Best per-step wall of ``steps`` post-warm-up steps."""
    best = float("inf")
    for _ in range(steps):
        t0 = time.perf_counter()
        solver.step(dt)
        best = min(best, time.perf_counter() - t0)
    return best


def speedup_report(order=ORDER, elements=ELEMENTS, steps=STEPS):
    """Time whole steps fused vs phase-wise; verify states agree.

    Returns one row per execution mode plus derived ``speedup`` on the
    fused row (fused over phase-wise on the same backend).
    """
    backend = compiled_backend()
    rows = []
    states = {}
    for fuse in (False, True):
        solver = _solver(order, elements, fuse)
        with solver:
            dt = 0.5 * solver.stable_dt()
            solver.step(dt)  # warm-up: compiles + binds parameters
            compile_s = solver.step_records[-1].compile_s
            sec_per_step = _step_seconds(solver, dt, steps)
            record = solver.step_records[-1]
            stats = solver.executor.stats
            states[fuse] = solver.states.copy()
            rows.append(
                {
                    "mode": "fused" if fuse else "phase",
                    "backend": backend,
                    "variant": solver.variant,
                    "order": order,
                    "grid": f"{elements}^3",
                    "sec_per_step": sec_per_step,
                    "compile_s": compile_s,
                    "fused_steps": stats.fused_steps,
                    "phase_steps": stats.phase_steps,
                    "steady_pack_calls": record.pack_calls,
                    "steady_unpack_calls": record.unpack_calls,
                    "pack_bytes_avoided": stats.pack_bytes_avoided,
                    "phase_walls": dict(record.phase_walls),
                    "fallbacks": dict(stats.fallbacks),
                }
            )
    scale = float(np.max(np.abs(states[False]))) or 1.0
    max_diff = float(np.max(np.abs(states[True] - states[False])))
    rows[1]["speedup"] = rows[0]["sec_per_step"] / rows[1]["sec_per_step"]
    rows[1]["max_diff"] = max_diff
    rows[1]["rel_diff"] = max_diff / scale
    return rows


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fuse", [False, True], ids=["phase", "fused"])
def test_fused_step_wallclock(benchmark, fuse):
    order = 3  # keep the pytest leg quick; the CLI gates at order 6
    solver = _solver(order, 2, fuse)
    with solver:
        dt = 0.5 * solver.stable_dt()
        solver.step(dt)  # warm/compile outside timing
        benchmark(solver.step, dt)
        if fuse:
            assert solver.executor.stats.fused_steps > 0


# ---------------------------------------------------------------------------
# CLI report + acceptance gate
# ---------------------------------------------------------------------------


def main(argv=None):
    import argparse

    try:
        from benchmarks.reporting import add_json_arg, maybe_write_json
    except ImportError:  # direct `python benchmarks/bench_fused_step.py` run
        from reporting import add_json_arg, maybe_write_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke): lower order, no gate")
    parser.add_argument("--order", type=int, default=None)
    add_json_arg(parser)
    args = parser.parse_args(argv)

    order = args.order or (3 if args.quick else ORDER)
    elements = 2 if args.quick else ELEMENTS
    steps = 1 if args.quick else STEPS
    rows = speedup_report(order=order, elements=elements, steps=steps)

    numba_note = (
        "available" if numba_available()
        else "NOT installed; generated kernels run as plain Python"
    )
    print(f"compiled backend: {compiled_backend()} (numba {numba_note})")
    header = (f"{'mode':<7}{'order':>6}{'grid':>6}{'s/step':>10}"
              f"{'compile s':>11}{'pack/step':>11}{'speedup':>9}"
              f"{'max|diff|':>11}")
    print(header)
    print("-" * len(header))
    for row in rows:
        packs = row["steady_pack_calls"] + row["steady_unpack_calls"]
        speed = row.get("speedup")
        diff = row.get("max_diff")
        speed_col = f"{speed:9.2f}" if speed is not None else f"{'':>9}"
        diff_col = f"{diff:11.1e}" if diff is not None else f"{'':>11}"
        print(f"{row['mode']:<7}{row['order']:>6}{row['grid']:>6}"
              f"{row['sec_per_step']:10.3f}{row['compile_s']:11.2f}"
              f"{packs:>11}{speed_col}{diff_col}")

    fused = rows[1]
    if fused["fallbacks"]:
        raise SystemExit(f"fused path fell back: {fused['fallbacks']}")
    if fused["fused_steps"] == 0:
        raise SystemExit("fused mode never dispatched the fused program")
    if fused["rel_diff"] > 1e-10:
        raise SystemExit(
            "fused step diverged from the phase-wise compiled path: "
            f"rel|diff| = {fused['rel_diff']:.3e}"
        )
    if fused["steady_pack_calls"] or fused["steady_unpack_calls"]:
        raise SystemExit(
            "steady-state fused step still packs/unpacks: "
            f"{fused['steady_pack_calls']} pack / "
            f"{fused['steady_unpack_calls']} unpack calls in one step"
        )
    print("steady-state fused step: 0 pack / 0 unpack calls "
          f"({fused['pack_bytes_avoided']} bytes avoided so far)")

    maybe_write_json("fused_step", rows, args.json,
                     extra={"backend": compiled_backend(),
                            "quick": args.quick})

    if not numba_available():
        print("\nspeedup gate skipped: numba not installed "
              "(plain-Python execution of generated kernels)")
        return 0
    if args.quick:
        print("\nspeedup gate skipped: --quick")
        return 0
    if fused["speedup"] < 1.5:
        raise SystemExit(
            f"acceptance: fused step at order {order} only reached "
            f"{fused['speedup']:.2f}x over the three-phase compiled "
            f"path (need >= 1.5x)"
        )
    print(f"\nacceptance: fused >= 1.5x over phase-wise at order {order} "
          f"(measured {fused['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
