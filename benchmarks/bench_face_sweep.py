"""Face-sweep vs. legacy Riemann/corrector phase breakdown on LOH1.

PRs 1-2 batched the Space-Time Predictor, which left the per-face
Riemann solves and the per-element corrector as the last pure-Python
loops in the time step.  The face-sweep engine
(:mod:`repro.engine.facesweep`) packs each direction's faces into one
contiguous plane and solves them with a single vectorized flux call;
the corrector runs over whole element blocks through the batched
scratch arena.  This benchmark measures the per-phase time split
(``solver.last_step_timings``) of both paths and gates the acceptance
criterion: the Riemann+corrector phase must be >= 3x faster than the
legacy loop at order 6 on a 6^3 LOH1 grid, with bitwise-identical
states.

Run styles:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_face_sweep.py``
  -- pytest-benchmark timing of one face-sweep step;
* ``PYTHONPATH=src python benchmarks/bench_face_sweep.py [--quick]``
  -- phase-breakdown report with the speedup gate (``--quick`` shrinks
  the grid/order for CI smoke and only requires no slowdown).
"""

import time

import numpy as np

from repro.scenarios import LOH1Scenario

ORDER = 6
ELEMENTS = 6
BATCH = 16
STEPS = 3
#: acceptance gate: riemann+correct speedup of the full configuration
GATE = 3.0


def phase_times(face_sweep, *, elements=ELEMENTS, order=ORDER,
                batch_size=BATCH, steps=STEPS):
    """Accumulated per-phase seconds over ``steps`` LOH1 steps.

    Returns ``(states, {"predict", "riemann", "correct"})`` -- one
    warm-up step runs first so one-time buffer/connectivity setup does
    not pollute the phase split.
    """
    scenario = LOH1Scenario(
        elements=elements, order=order,
        batch_size=batch_size, face_sweep=face_sweep,
    )
    solver = scenario.solver
    dt = solver.stable_dt()
    solver.step(dt)  # warm-up: builds connectivity, binds parameters
    totals = {"predict": 0.0, "riemann": 0.0, "correct": 0.0}
    for _ in range(steps):
        solver.step(dt)
        for phase, seconds in solver.last_step_timings.items():
            totals[phase] += seconds
    return np.array(solver.states), totals


def test_face_sweep_step_wallclock(benchmark):
    """pytest-benchmark entry: one face-sweep LOH1 step, small order."""
    scenario = LOH1Scenario(elements=3, order=3, batch_size=4)
    dt = scenario.solver.stable_dt()
    benchmark(scenario.solver.step, dt)
    assert np.isfinite(scenario.solver.states).all()


def test_face_sweep_matches_legacy_at_bench_scale():
    """The two paths must agree bitwise at benchmark configuration."""
    legacy, _ = phase_times(False, elements=3, order=3, steps=1)
    sweep, _ = phase_times(True, elements=3, order=3, steps=1)
    np.testing.assert_array_equal(sweep, legacy)


def breakdown_report(elements=ELEMENTS, order=ORDER, batch_size=BATCH,
                     steps=STEPS):
    """Phase seconds of both paths plus the riemann+correct speedup."""
    legacy_states, legacy = phase_times(
        False, elements=elements, order=order,
        batch_size=batch_size, steps=steps,
    )
    sweep_states, sweep = phase_times(
        True, elements=elements, order=order,
        batch_size=batch_size, steps=steps,
    )
    identical = bool(np.array_equal(sweep_states, legacy_states))
    hot_legacy = legacy["riemann"] + legacy["correct"]
    hot_sweep = sweep["riemann"] + sweep["correct"]
    return {
        "legacy": legacy,
        "sweep": sweep,
        "speedup": hot_legacy / hot_sweep,
        "identical": identical,
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: order 3 on a 3^3 grid, gate >= 1x")
    parser.add_argument("--order", type=int, default=None)
    parser.add_argument("--elements", type=int, default=None)
    args = parser.parse_args(argv)

    order = args.order or (3 if args.quick else ORDER)
    elements = args.elements or (3 if args.quick else ELEMENTS)
    batch = 4 if args.quick else BATCH
    steps = 2 if args.quick else STEPS
    gate = 1.0 if args.quick else GATE

    print(f"LOH1 {elements}^3 elements, order {order}, batch {batch}, "
          f"{steps} timed steps per path")
    started = time.perf_counter()
    report = breakdown_report(elements=elements, order=order,
                              batch_size=batch, steps=steps)
    elapsed = time.perf_counter() - started

    header = f"{'path':>12}{'predict':>10}{'riemann':>10}{'correct':>10}{'total':>10}"
    print(header)
    print("-" * len(header))
    for path in ("legacy", "sweep"):
        t = report[path]
        total = sum(t.values())
        print(f"{path:>12}{t['predict']:10.3f}{t['riemann']:10.3f}"
              f"{t['correct']:10.3f}{total:10.3f}")
    print(f"\nriemann+correct speedup: {report['speedup']:.2f}x "
          f"(gate: >= {gate:.1f}x); states bitwise identical: "
          f"{report['identical']}  [{elapsed:.1f}s]")

    if not report["identical"]:
        raise SystemExit("face-sweep states diverged from the legacy path")
    if report["speedup"] < gate:
        raise SystemExit(
            f"acceptance: riemann+correct speedup only "
            f"{report['speedup']:.2f}x (need >= {gate:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
