"""Real wall-clock timing of the four NumPy STP kernel variants.

This is the substitute for the paper's testbed timings (DESIGN.md): the
kernels genuinely execute their numerics here, so pytest-benchmark
measures how the algorithmic differences -- footprint reduction, buffer
reuse, layout transposes -- play out in this substrate.  NumPy has no
SIMD/layout control, so the *vectorization* effects of the paper do not
show up here (that is what the machine model is for); the *memory*
effects do.
"""

import numpy as np
import pytest

from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.pde import CurvilinearElasticPDE

PDE = CurvilinearElasticPDE()
ORDER = 6


def element_state(order):
    return PDE.example_state((order,) * 3, np.random.default_rng(0))


@pytest.mark.parametrize("variant", ["generic", "log", "splitck", "aosoa"])
def test_stp_kernel_wallclock(benchmark, variant):
    spec = KernelSpec(order=ORDER, nvar=9, nparam=12, arch="skx")
    kernel = make_kernel(variant, spec, PDE)
    q = element_state(ORDER)
    result = benchmark(kernel.predictor, q, 1e-3, 0.5)
    assert result.qavg.shape == (ORDER,) * 3 + (21,)


@pytest.mark.parametrize("order", [4, 8])
def test_splitck_scaling_with_order(benchmark, order):
    spec = KernelSpec(order=order, nvar=9, nparam=12, arch="skx")
    kernel = make_kernel("splitck", spec, PDE)
    q = element_state(order)
    benchmark(kernel.predictor, q, 1e-3, 0.5)


def test_engine_step_wallclock(benchmark):
    from repro.scenarios import gaussian_pulse_setup

    solver = gaussian_pulse_setup(elements=2, order=4, variant="splitck")
    benchmark.pedantic(solver.step, args=(1e-4,), rounds=3, iterations=1)
