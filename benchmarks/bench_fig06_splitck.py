"""Regenerates Fig. 6: LoG vs the dimension-split (SplitCK) kernel.

Paper claims reproduced here:

* SplitCK's memory stalls start lower than LoG's and decrease
  steadily with the order, while LoG's plateau/increase;
* SplitCK's performance keeps growing with the order, overtaking LoG
  from moderate orders on.
"""

from repro.harness.figures import figure6
from repro.harness.report import render_fig6


def test_fig6_series(benchmark, warm_caches):
    series = benchmark.pedantic(figure6, rounds=1, iterations=1)
    log = {r["order"]: r for r in series["log"]}
    split = {r["order"]: r for r in series["splitck"]}

    orders = sorted(log)
    split_stalls = [split[o]["memory_stall_pct"] for o in orders]
    assert split_stalls == sorted(split_stalls, reverse=True), "steady decrease"
    assert all(
        split[o]["memory_stall_pct"] < log[o]["memory_stall_pct"] for o in orders
    )
    split_perf = [split[o]["percent_available"] for o in orders]
    assert split_perf == sorted(split_perf), "performance keeps growing"
    assert all(
        split[o]["percent_available"] > log[o]["percent_available"]
        for o in orders
        if o >= 6
    )

    print()
    print(render_fig6())
