"""Service-level plan-cache benchmark: N identical jobs compile once.

The service promotes the per-process plan registry to an explicitly
shared cache (:class:`repro.service.plancache.SharedPlanCache`), so a
fleet of identical jobs pays kernel compilation exactly once: the
first job's telemetry carries the real ``compile_s``, every later job
reports (near-)zero and goes straight to stepping.  This benchmark
submits ``N`` identical compiled-backend jobs through
:class:`~repro.service.SolverService` and **gates** on that contract:

* every later job's ``compile_s`` must be <= 5% of the first job's,
* all jobs must finish bitwise identical (same ``state_sha256``),
* the shared cache must report exactly one module build.

Run styles:

* ``PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--json]``
  -- per-job table + cache counters, gated; ``--json`` writes
  ``BENCH_service.json`` through the shared reporting layer.
* ``PYTHONPATH=src python -m pytest benchmarks/bench_service.py``
  -- pytest-benchmark timing of a warm-cache service job.
"""

import time

from repro.codegen.compiled import clear_plan_registry
from repro.codegen.executor import numba_available

JOBS = 6
ORDER = 4
ELEMENTS = 3
STEPS = 3


def compiled_backend() -> str:
    """The compiled backend to measure: jitted if possible, else plain."""
    return "numba" if numba_available() else "generated"


def _spec(order, elements, steps):
    return {
        "scenario": "gaussian",
        "elements": elements,
        "order": order,
        "steps": steps,
        "backend": compiled_backend(),
    }


def fleet_report(jobs=JOBS, order=ORDER, elements=ELEMENTS, steps=STEPS,
                 slots=2):
    """Run ``jobs`` identical jobs through one service; (rows, cache).

    The first submission is awaited before the rest go in, so the
    compile cost lands deterministically on job 0 -- the remaining
    jobs then run concurrently over ``slots`` slots against the warm
    cache.  Returns one row per job (submission order) plus the shared
    plan cache's counter snapshot.
    """
    from repro.service import SolverService

    clear_plan_registry()
    spec = _spec(order, elements, steps)
    rows = []
    with SolverService(slots=slots, max_pending=jobs) as svc:
        wall0 = time.perf_counter()
        first = svc.submit(spec).result(timeout=600)
        first_wall = time.perf_counter() - wall0
        handles = [svc.submit(spec) for _ in range(jobs - 1)]
        results = [first] + [h.result(timeout=600) for h in handles]
        cache = svc.stats()["plan_cache"]
    for i, result in enumerate(results):
        rows.append(
            {
                "job": i,
                "backend": result["backend"],
                "order": order,
                "grid": f"{elements}^3",
                "steps": result["steps"],
                "compile_s": result["compile_s"],
                "wall_s": result["wall_s"] if i else first_wall,
                "compile_frac_of_first": (
                    result["compile_s"] / results[0]["compile_s"]
                    if results[0]["compile_s"] > 0 else 0.0
                ),
                "state_sha256": result["state_sha256"],
            }
        )
    return rows, cache


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------


def test_warm_cache_service_job(benchmark):
    """Time one service job end-to-end against a pre-warmed plan cache."""
    from repro.service import SolverService

    spec = _spec(order=3, elements=2, steps=2)
    with SolverService(slots=1) as svc:
        svc.warm(spec)

        def run():
            return svc.submit(spec).result(timeout=600)

        result = benchmark(run)
        assert result["state"] == "done"
        assert result["compile_s"] == 0.0


# ---------------------------------------------------------------------------
# CLI report + acceptance gate
# ---------------------------------------------------------------------------


def main(argv=None):
    import argparse

    try:
        from benchmarks.reporting import add_json_arg, maybe_write_json
    except ImportError:  # direct `python benchmarks/bench_service.py` run
        from reporting import add_json_arg, maybe_write_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet (CI smoke): 4 jobs, lower order")
    parser.add_argument("--jobs", type=int, default=None)
    add_json_arg(parser)
    args = parser.parse_args(argv)

    jobs = args.jobs or (4 if args.quick else JOBS)
    order = 3 if args.quick else ORDER
    elements = 2 if args.quick else ELEMENTS
    steps = 2 if args.quick else STEPS
    rows, cache = fleet_report(
        jobs=jobs, order=order, elements=elements, steps=steps
    )

    numba_note = (
        "available" if numba_available()
        else "NOT installed; generated kernels run as plain Python"
    )
    print(f"service fleet: {jobs} identical jobs, backend "
          f"{compiled_backend()} (numba {numba_note})")
    header = (f"{'job':<5}{'order':>6}{'grid':>6}{'compile s':>11}"
              f"{'of first':>10}{'wall s':>9}  digest")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['job']:<5}{row['order']:>6}{row['grid']:>6}"
              f"{row['compile_s']:11.4f}{row['compile_frac_of_first']:10.2%}"
              f"{row['wall_s']:9.3f}  {row['state_sha256'][:12]}")
    print(f"plan cache: {cache['module_builds']} build(s), "
          f"{cache['hits']} hits / {cache['misses']} misses, "
          f"{cache['compile_seconds_total']:.4f}s total compile")

    digests = {row["state_sha256"] for row in rows}
    if len(digests) != 1:
        raise SystemExit(f"jobs diverged: {len(digests)} distinct digests")
    if rows[0]["compile_s"] <= 0.0:
        raise SystemExit("first job reported no compile time; cache was warm")
    laggards = [
        row["job"] for row in rows[1:]
        if row["compile_s"] > 0.05 * rows[0]["compile_s"]
    ]
    if laggards:
        raise SystemExit(
            f"cache-hit jobs {laggards} exceeded 5% of the first job's "
            f"compile_s -- the shared plan cache is not being shared"
        )
    if cache["module_builds"] != 1:
        raise SystemExit(
            f"expected exactly 1 module build, got {cache['module_builds']}"
        )
    print(f"GATE OK: jobs 1..{jobs - 1} all <= 5% of job 0's compile_s, "
          "bitwise identical results")

    maybe_write_json(
        "service", rows, args.json,
        extra={"backend": compiled_backend(), "jobs": jobs,
               "plan_cache": cache},
    )


if __name__ == "__main__":
    main()
