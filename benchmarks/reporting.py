"""Shared machine-readable benchmark reporting (``--json``).

Every benchmark CLI that opts in gains a ``--json [PATH]`` flag and
writes one ``BENCH_<name>.json`` document next to the repo root (or at
the explicit PATH), so the performance trajectory across PRs can be
diffed by tooling instead of scraped from stdout tables.

The document layout is deliberately uniform::

    {
      "benchmark": "fused_step",          # reporter name
      "unix_time": 1754650000.0,          # when the run finished
      "environment": {"python": "...", "numba": false, "backend": "..."},
      "rows": [ {...}, {...} ]            # the CLI's own table rows
    }

``rows`` carries whatever the benchmark's report function produced
(variant, order, grid, per-phase seconds, speedups, ...) -- the
reporter adds provenance, never reshapes the data.

Usage from a benchmark ``main()``::

    parser = argparse.ArgumentParser(...)
    add_json_arg(parser)
    args = parser.parse_args(argv)
    ...
    maybe_write_json("backend", rows, args.json,
                     extra={"backend": backend})
"""

import json
import platform
import time
from pathlib import Path

__all__ = ["add_json_arg", "bench_json_path", "maybe_write_json"]


def add_json_arg(parser) -> None:
    """Register the shared ``--json [PATH]`` option on an argparser.

    Without a value the report lands at the default
    :func:`bench_json_path`; with a value it lands at that path.
    ``args.json`` is ``None`` when the flag was not given.
    """
    parser.add_argument(
        "--json",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "also write the rows as BENCH_<name>.json "
            "(optionally at PATH) for cross-PR trajectory tracking"
        ),
    )


def bench_json_path(name: str) -> Path:
    """Default output path of reporter ``name``: ``BENCH_<name>.json``.

    Resolved against the repository root when this file lives in a
    checkout (``benchmarks/`` has a sibling ``src/``), else the current
    directory -- so CI and local runs drop the file in the same place.
    """
    root = Path(__file__).resolve().parent.parent
    base = root if (root / "src").is_dir() else Path.cwd()
    return base / f"BENCH_{name}.json"


def maybe_write_json(name: str, rows, json_arg, extra: dict | None = None):
    """Write ``BENCH_<name>.json`` if the ``--json`` flag was given.

    ``json_arg`` is the parsed ``args.json`` value (``None`` = flag
    absent, ``""`` = default path, anything else = explicit path).
    ``extra`` merges into the ``environment`` block.  Returns the
    written :class:`~pathlib.Path`, or ``None`` when skipped.
    """
    if json_arg is None:
        return None
    from repro.codegen.executor import numba_available

    path = Path(json_arg) if json_arg else bench_json_path(name)
    environment = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numba": numba_available(),
    }
    environment.update(extra or {})
    document = {
        "benchmark": name,
        "unix_time": time.time(),
        "environment": environment,
        "rows": list(rows),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"json report: {path}")
    return path
