"""Ablation: architecture sweep of the Kernel Generator targets.

The Kernel Generator supports multiple SIMD targets via template
macros (paper Secs. II-D, III-A: "future architectures can be added by
simply extending the macros' definitions").  This sweep runs the best
kernel on every supported target and checks the expected ordering.
"""

from repro.harness.experiments import application_performance


def test_architecture_sweep(benchmark):
    order = 9

    def run():
        return {
            arch: application_performance("aosoa", order, arch)
            for arch in ("noarch", "wsm", "hsw", "skx")
        }

    perf = benchmark.pedantic(run, rounds=1, iterations=1)

    # wider vectors -> higher absolute throughput, despite the AVX
    # frequency derating
    assert perf["skx"].gflops > perf["hsw"].gflops > perf["noarch"].gflops
    # frequency licenses applied per target
    assert perf["skx"].freq_ghz == 1.9
    assert perf["hsw"].freq_ghz == 2.3
    assert perf["noarch"].freq_ghz == 2.7

    print(f"\nAoSoA kernel at order {order} across architectures:")
    for arch, p in perf.items():
        print(f"  {arch:>7}: {p.gflops:6.1f} GF/s @ {p.freq_ghz} GHz "
              f"({p.memory_stall_pct:4.1f}% stalls)")


def test_knl_has_no_l3(benchmark):
    perf = benchmark.pedantic(
        lambda: application_performance("splitck", 8, "knl"), rounds=1, iterations=1
    )
    assert perf.gflops > 0
    assert "L3" not in perf.misses
