"""Wall-clock comparison: batched element-block STP vs the per-element loop.

The :class:`~repro.core.variants.batched.BatchedSTP` driver removes the
per-element Python overhead (operator rebuilds, scratch allocation,
per-slice GEMM dispatch) by fusing the contraction stages over element
blocks.  This benchmark measures that win on the paper's m = 21
curvilinear elastic workload and asserts the two paths agree to
round-off -- the speedup must come purely from execution, never from
numerics.

Run styles:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_batched_stp.py``
  -- pytest-benchmark timings;
* ``PYTHONPATH=src python benchmarks/bench_batched_stp.py [--quick]``
  -- direct speedup report (the acceptance check: batched ``log`` at
  order 6 must beat the per-element loop by >= 2x), plus the
  machine-model footprint view.
"""

import time

import numpy as np
import pytest

from repro.core.spec import KernelSpec
from repro.core.variants import BatchedSTP, make_kernel
from repro.pde import CurvilinearElasticPDE

PDE = CurvilinearElasticPDE()
ORDER = 6
BATCH = 16
ELEMENTS = 32


def element_block(order, elements=ELEMENTS):
    rng = np.random.default_rng(0)
    states = np.empty((elements, order, order, order, PDE.nquantities))
    for e in range(elements):
        states[e] = PDE.example_state((order,) * 3, rng)
    return states


def paper_spec(order):
    return KernelSpec(order=order, nvar=9, nparam=12, arch="skx")


def run_scalar(kernel, states, dt=1e-3, h=0.5):
    return [kernel.predictor(states[e], dt, h) for e in range(states.shape[0])]


@pytest.mark.parametrize("variant", ["generic", "log", "splitck", "aosoa"])
def test_batched_block_wallclock(benchmark, variant):
    driver = BatchedSTP(variant, paper_spec(ORDER), PDE, batch_size=BATCH)
    states = element_block(ORDER)
    results = benchmark(driver.predictor_all, states, 1e-3, 0.5)
    assert len(results) == ELEMENTS


@pytest.mark.parametrize("variant", ["log", "splitck"])
def test_per_element_loop_wallclock(benchmark, variant):
    kernel = make_kernel(variant, paper_spec(ORDER), PDE)
    states = element_block(ORDER)
    results = benchmark(run_scalar, kernel, states)
    assert len(results) == ELEMENTS


def _time(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def speedup_report(order=ORDER, elements=ELEMENTS, batch_size=BATCH,
                   variants=("generic", "log", "splitck", "aosoa"), repeats=3):
    """Measure per-element vs batched wall-clock and verify equivalence."""
    spec = paper_spec(order)
    states = element_block(order, elements)
    dt, h = 1e-3, 0.5
    rows = []
    for variant in variants:
        kernel = make_kernel(variant, spec, PDE)
        driver = BatchedSTP(variant, spec, PDE, batch_size=batch_size)
        ref = run_scalar(kernel, states, dt, h)
        got = driver.predictor_all(states, dt, h)
        max_diff = max(
            max(
                float(np.max(np.abs(g.qavg - r.qavg))),
                float(np.max(np.abs(g.vavg - r.vavg))),
            )
            for g, r in zip(got, ref)
        )
        t_scalar = _time(run_scalar, kernel, states, dt, h, repeats=repeats)
        t_batched = _time(driver.predictor_all, states, dt, h, repeats=repeats)
        rows.append(
            {
                "variant": variant,
                "order": order,
                "elements": elements,
                "batch_size": batch_size,
                "t_scalar_ms": 1e3 * t_scalar,
                "t_batched_ms": 1e3 * t_batched,
                "speedup": t_scalar / t_batched,
                "max_diff": max_diff,
                "arena_mib": driver.scratch_bytes / 2**20,
            }
        )
    return rows


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke): fewer elements/repeats")
    parser.add_argument("--order", type=int, default=ORDER)
    args = parser.parse_args(argv)

    elements = 8 if args.quick else ELEMENTS
    batch = 4 if args.quick else BATCH
    repeats = 1 if args.quick else 3
    rows = speedup_report(order=args.order, elements=elements,
                          batch_size=batch, repeats=repeats)

    header = (f"{'variant':<10}{'order':>6}{'elems':>7}{'B':>4}"
              f"{'scalar ms':>11}{'batched ms':>12}{'speedup':>9}"
              f"{'max|diff|':>11}{'arena MiB':>11}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['variant']:<10}{row['order']:>6}{row['elements']:>7}"
              f"{row['batch_size']:>4}{row['t_scalar_ms']:11.1f}"
              f"{row['t_batched_ms']:12.1f}{row['speedup']:9.2f}"
              f"{row['max_diff']:11.1e}{row['arena_mib']:11.2f}")
        if row["max_diff"] > 1e-12:
            raise SystemExit(
                f"batched/{row['variant']} diverged from the per-element "
                f"path: max|diff| = {row['max_diff']:.3e}"
            )

    print()
    print("machine-model footprint view (see also: python -m repro.harness batched)")
    for variant in ("log", "splitck"):
        driver = BatchedSTP(variant, paper_spec(args.order), PDE, batch_size=batch)
        rep = driver.footprint_report()
        print(f"  {variant}: arena {rep['arena_bytes'] / 2**20:.2f} MiB "
              f"({rep['arena_bytes_per_element'] / 2**10:.0f} KiB/elem), "
              f"scalar temp {rep['scalar_temp_bytes'] / 2**10:.0f} KiB/elem")

    log_row = next((r for r in rows if r["variant"] == "log"), None)
    if log_row is not None and not args.quick and log_row["speedup"] < 2.0:
        raise SystemExit(
            f"acceptance: batched log at order {args.order} only reached "
            f"{log_row['speedup']:.2f}x (need >= 2x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
