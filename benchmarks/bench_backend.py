"""Wall-clock comparison: compiled kernel backend vs the NumPy executor.

The compiled backend lowers each variant's :class:`KernelPlan` to
fixed-shape kernels (see ``docs/backends.md``) and runs them jitted
through Numba.  This benchmark measures that win on the paper's m = 21
curvilinear elastic workload -- the order-6 space-time predictor is the
acceptance phase -- and verifies the two executors agree to round-off:
the speedup must come purely from execution, never from numerics.

Run styles:

* ``PYTHONPATH=src python benchmarks/bench_backend.py [--quick]``
  -- speedup report.  With Numba installed the full run *gates*:
  the compiled order-6 STP must beat the NumPy executor by >= 2x.
  Without Numba the same generated kernels execute as plain Python
  (backend ``"generated"``), the numerics check still runs, and the
  speedup gate is skipped (exit 0).
* ``PYTHONPATH=src python -m pytest benchmarks/bench_backend.py``
  -- pytest-benchmark timings of both executors.
"""

import time

import numpy as np
import pytest

from repro.codegen.executor import numba_available, resolve_executor
from repro.core.spec import KernelSpec
from repro.core.variants import BatchedSTP
from repro.pde import CurvilinearElasticPDE

PDE = CurvilinearElasticPDE()
ORDER = 6
BATCH = 16
ELEMENTS = 32


def element_block(order, elements=ELEMENTS):
    rng = np.random.default_rng(0)
    states = np.empty((elements, order, order, order, PDE.nquantities))
    for e in range(elements):
        states[e] = PDE.example_state((order,) * 3, rng)
    return states


def paper_spec(order):
    return KernelSpec(order=order, nvar=9, nparam=12, arch="skx")


def compiled_backend() -> str:
    """The compiled backend to measure: jitted if possible, else plain."""
    return "numba" if numba_available() else "generated"


def _time(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _driver(variant, order, batch_size, backend):
    return BatchedSTP(
        variant, paper_spec(order), PDE, batch_size=batch_size,
        backend=resolve_executor(backend),
    )


def _max_diff(got, ref) -> float:
    return max(
        max(
            float(np.max(np.abs(g.qavg - r.qavg))),
            float(np.max(np.abs(g.vavg - r.vavg))),
        )
        for g, r in zip(got, ref)
    )


def speedup_report(order=ORDER, elements=ELEMENTS, batch_size=BATCH,
                   variants=("splitck", "log"), repeats=3):
    """Time the STP phase on both executors; verify they agree."""
    states = element_block(order, elements)
    dt, h = 1e-3, 0.5
    backend = compiled_backend()
    rows = []
    for variant in variants:
        numpy_driver = _driver(variant, order, batch_size, "numpy")
        compiled_driver = _driver(variant, order, batch_size, backend)
        ref = numpy_driver.predictor_all(states, dt, h)
        got = compiled_driver.predictor_all(states, dt, h)  # warm/compile
        max_diff = _max_diff(got, ref)
        compile_s = compiled_driver.executor.stats.drain_compile_s()
        t_numpy = _time(numpy_driver.predictor_all, states, dt, h,
                        repeats=repeats)
        t_compiled = _time(compiled_driver.predictor_all, states, dt, h,
                           repeats=repeats)
        rows.append(
            {
                "variant": variant,
                "backend": backend,
                "order": order,
                "elements": elements,
                "t_numpy_ms": 1e3 * t_numpy,
                "t_compiled_ms": 1e3 * t_compiled,
                "compile_s": compile_s,
                "speedup": t_numpy / t_compiled,
                "max_diff": max_diff,
                "fallbacks": dict(compiled_driver.executor.stats.fallbacks),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["numpy", "compiled"])
def test_backend_stp_wallclock(benchmark, backend):
    order = 4  # keep the pytest leg quick; the CLI gates at order 6
    name = "numpy" if backend == "numpy" else compiled_backend()
    driver = _driver("splitck", order, 8, name)
    states = element_block(order, 8)
    driver.predictor_all(states, 1e-3, 0.5)  # warm/compile outside timing
    results = benchmark(driver.predictor_all, states, 1e-3, 0.5)
    assert len(results) == 8


# ---------------------------------------------------------------------------
# CLI report + acceptance gate
# ---------------------------------------------------------------------------


def main(argv=None):
    import argparse

    try:
        from benchmarks.reporting import add_json_arg, maybe_write_json
    except ImportError:  # direct `python benchmarks/bench_backend.py` run
        from reporting import add_json_arg, maybe_write_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke): lower order, no gate")
    parser.add_argument("--order", type=int, default=None)
    add_json_arg(parser)
    args = parser.parse_args(argv)

    order = args.order or (4 if args.quick else ORDER)
    elements = 8 if args.quick else ELEMENTS
    batch = 4 if args.quick else BATCH
    repeats = 1 if args.quick else 3
    rows = speedup_report(order=order, elements=elements, batch_size=batch,
                          repeats=repeats)

    numba_note = (
        "available" if numba_available()
        else "NOT installed; generated kernels run as plain Python"
    )
    print(f"compiled backend: {compiled_backend()} (numba {numba_note})")
    header = (f"{'variant':<10}{'order':>6}{'elems':>7}"
              f"{'numpy ms':>10}{'compiled ms':>13}{'compile s':>11}"
              f"{'speedup':>9}{'max|diff|':>11}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['variant']:<10}{row['order']:>6}{row['elements']:>7}"
              f"{row['t_numpy_ms']:10.1f}{row['t_compiled_ms']:13.1f}"
              f"{row['compile_s']:11.2f}{row['speedup']:9.2f}"
              f"{row['max_diff']:11.1e}")
        if row["fallbacks"]:
            raise SystemExit(
                f"compiled/{row['variant']} fell back to NumPy: "
                f"{row['fallbacks']}"
            )
        if row["max_diff"] > 1e-10:
            raise SystemExit(
                f"compiled/{row['variant']} diverged from the NumPy "
                f"executor: max|diff| = {row['max_diff']:.3e}"
            )

    maybe_write_json("backend", rows, args.json,
                     extra={"backend": compiled_backend(),
                            "quick": args.quick})

    if not numba_available():
        print("\nspeedup gate skipped: numba not installed "
              "(plain-Python execution of generated kernels)")
        return 0
    if args.quick:
        print("\nspeedup gate skipped: --quick")
        return 0
    worst = min(rows, key=lambda r: r["speedup"])
    if worst["speedup"] < 2.0:
        raise SystemExit(
            f"acceptance: compiled {worst['variant']} at order {order} only "
            f"reached {worst['speedup']:.2f}x over numpy (need >= 2x)"
        )
    print(f"\nacceptance: compiled >= 2x over numpy at order {order} "
          f"(worst: {worst['variant']} {worst['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
