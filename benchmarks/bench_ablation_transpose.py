"""Ablation: on-the-fly SoA transposes vs the AoSoA layout (Sec. V-A).

The paper evaluated transposing tensors around every user-function call
before settling on the AoSoA layout: "It proved effective for complex
non-linear scenarios ... However, the linear PDE systems ... have too
simple (and inexpensive) user functions for such a solution to be
effective."  Both halves of that judgment are reproduced here:

* with the paper's (cheap) curvilinear elastic fluxes, the transpose
  variant vectorizes almost everything yet *loses* to plain SplitCK;
* with a 10x more expensive user function (standing in for a complex
  non-linear flux), the transposes pay off.
"""

import pytest

from repro.core.spec import KernelSpec
from repro.core.variants import make_kernel
from repro.harness.experiments import application_performance
from repro.machine.profiler import Profiler
from repro.pde import CurvilinearElasticPDE

ORDER = 9


class ExpensiveFluxPDE(CurvilinearElasticPDE):
    """Cost-model stand-in for a complex (non-linear-grade) user function."""

    name = "curvilinear_elastic_expensive"

    def flux_flops_per_node(self, d: int) -> int:
        return 10 * super().flux_flops_per_node(d)


def profile(variant, pde):
    spec = KernelSpec(order=ORDER, nvar=9, nparam=12, arch="skx")
    plan = make_kernel(variant, spec, pde).build_plan()
    return Profiler().profile(plan)


def test_transposes_lose_for_cheap_linear_fluxes(benchmark):
    perf = benchmark.pedantic(
        lambda: {
            v: application_performance(v, ORDER)
            for v in ("splitck", "transpose_uf", "aosoa")
        },
        rounds=1,
        iterations=1,
    )
    # near-full vectorization achieved...
    assert perf["transpose_uf"].flops.scalar_fraction < 0.10
    # ...but slower than not transposing at all (the paper's verdict)
    assert perf["transpose_uf"].percent_available < perf["splitck"].percent_available
    # and the AoSoA layout dominates both
    assert perf["aosoa"].percent_available > perf["splitck"].percent_available

    print("\nSec. V-A ablation (order 9, cheap linear fluxes):")
    for v, p in perf.items():
        print(f"  {v:>12}: {p.percent_available:5.1f}% avail, "
              f"{p.flops.scalar_fraction * 100:4.1f}% scalar FLOPs")


def test_transposes_win_for_expensive_user_functions(benchmark):
    pde = ExpensiveFluxPDE()

    def run():
        return {v: profile(v, pde) for v in ("splitck", "transpose_uf")}

    perf = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = perf["transpose_uf"].gflops / perf["splitck"].gflops
    assert ratio > 1.0, "expensive user functions should flip the verdict"

    print(f"\nwith 10x user-function cost: transpose_uf/splitck = {ratio:.2f}x "
          "(the paper's non-linear-scenario observation)")


def test_transpose_variant_numerics_unchanged():
    import numpy as np

    pde = CurvilinearElasticPDE()
    spec = KernelSpec(order=5, nvar=9, nparam=12, arch="skx")
    q = pde.example_state((5,) * 3, np.random.default_rng(0))
    a = make_kernel("transpose_uf", spec, pde).predictor(q, dt=1e-3, h=0.5)
    b = make_kernel("splitck", spec, pde).predictor(q, dt=1e-3, h=0.5)
    np.testing.assert_allclose(a.qavg, b.qavg, atol=1e-13)
